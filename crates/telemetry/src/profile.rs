//! The campaign phase profiler: where does campaign *wall-clock* go?
//!
//! ROADMAP item 1 (fork-the-world) claims the golden-prefix recompute —
//! re-simulating the identical pre-injection window of every experiment —
//! dominates campaign cost. This module produces the number that sizes
//! that claim: cumulative wall time split into
//!
//! * **Plan** — traffic recording + spec generation,
//! * **Baseline** — golden runs building the classification baseline,
//! * **GoldenPrefix** — per-experiment sim time before the injection
//!   window opens (`t0`): the part fork-the-world would snapshot away,
//! * **FaultWindow** — per-experiment sim time at/after `t0`,
//! * **Classify** — post-run statistics and failure classification,
//! * **Other** — anything explicitly attributed outside those five.
//!
//! Accumulation is process-wide (saturating atomic nanoseconds), so
//! worker threads add straight in; wall-clock timing never touches the
//! simulated clock, RNG, or event order, so it cannot perturb results.
//! Enabled by `MUTINY_PROFILE` (any value but `0`), by metrics collection
//! (`MUTINY_METRICS`), or by [`crate::enable_in_process`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Environment variable enabling the profiler on its own.
pub const PROFILE_ENV: &str = "MUTINY_PROFILE";

/// A campaign phase wall time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Traffic recording and injection-spec planning.
    Plan,
    /// Golden runs building the classification baseline.
    Baseline,
    /// Pre-injection (`now < t0`) share of experiment simulation.
    GoldenPrefix,
    /// At/after-`t0` share of experiment simulation.
    FaultWindow,
    /// Post-run statistics and classification.
    Classify,
    /// Explicitly attributed miscellaneous work.
    Other,
}

/// All phases, in reporting order.
pub const ALL: [Phase; 6] = [
    Phase::Plan,
    Phase::Baseline,
    Phase::GoldenPrefix,
    Phase::FaultWindow,
    Phase::Classify,
    Phase::Other,
];

impl Phase {
    /// Stable snake_case label used in exports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Plan => "plan",
            Phase::Baseline => "baseline",
            Phase::GoldenPrefix => "golden_prefix",
            Phase::FaultWindow => "fault_window",
            Phase::Classify => "classify",
            Phase::Other => "other",
        }
    }

    fn idx(self) -> usize {
        match self {
            Phase::Plan => 0,
            Phase::Baseline => 1,
            Phase::GoldenPrefix => 2,
            Phase::FaultWindow => 3,
            Phase::Classify => 4,
            Phase::Other => 5,
        }
    }
}

static NANOS: [AtomicU64; 6] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// True when phase attribution should be collected. Reads the
/// environment; call once per experiment/phase, not per event.
pub fn enabled() -> bool {
    crate::requested()
        || std::env::var(PROFILE_ENV)
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false)
}

fn saturating_fetch_add(cell: &AtomicU64, v: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(v);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Adds `nanos` of wall time to `phase` (saturating).
pub fn add_nanos(phase: Phase, nanos: u64) {
    saturating_fetch_add(&NANOS[phase.idx()], nanos);
}

/// Adds an [`std::time::Duration`] of wall time to `phase`.
pub fn add(phase: Phase, elapsed: std::time::Duration) {
    add_nanos(phase, u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
}

/// Times `f`, attributing its wall time to `phase` when profiling is on.
pub fn time<T>(phase: Phase, f: impl FnOnce() -> T) -> T {
    if !enabled() {
        return f();
    }
    let t = std::time::Instant::now();
    let out = f();
    add(phase, t.elapsed());
    out
}

/// Zeroes every phase accumulator (bench scoping).
pub fn reset() {
    for cell in &NANOS {
        cell.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the phase accumulators, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Snapshot {
    /// Seconds per phase, indexed like [`ALL`].
    pub seconds: [f64; 6],
}

impl Snapshot {
    /// Seconds attributed to `phase`.
    pub fn of(&self, phase: Phase) -> f64 {
        self.seconds[phase.idx()]
    }

    /// Total attributed seconds.
    pub fn total(&self) -> f64 {
        self.seconds.iter().sum()
    }

    /// The golden-prefix share of per-experiment time (prefix + fault
    /// window + classify) — the fraction fork-the-world could avoid
    /// re-simulating. Zero when no experiment time was recorded.
    pub fn golden_prefix_share(&self) -> f64 {
        let prefix = self.of(Phase::GoldenPrefix);
        let experiment = prefix + self.of(Phase::FaultWindow) + self.of(Phase::Classify);
        if experiment <= 0.0 {
            0.0
        } else {
            prefix / experiment
        }
    }
}

/// Snapshots the accumulators.
pub fn snapshot() -> Snapshot {
    let mut s = Snapshot::default();
    for (i, cell) in NANOS.iter().enumerate() {
        s.seconds[i] = cell.load(Ordering::Relaxed) as f64 / 1e9;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_accumulate_and_share_is_bounded() {
        // Distinctive values so parallel unit tests touching other
        // phases cannot confuse this one: only relative deltas checked.
        let before = snapshot();
        add_nanos(Phase::GoldenPrefix, 3_000_000_000);
        add_nanos(Phase::FaultWindow, 1_000_000_000);
        add_nanos(Phase::Classify, 0);
        let after = snapshot();
        assert!(after.of(Phase::GoldenPrefix) - before.of(Phase::GoldenPrefix) >= 2.9);
        assert!(after.golden_prefix_share() > 0.0);
        assert!(after.golden_prefix_share() <= 1.0);
    }

    #[test]
    fn saturating_add_pins_at_max() {
        let cell = AtomicU64::new(u64::MAX - 5);
        saturating_fetch_add(&cell, 10);
        assert_eq!(cell.load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            [
                "plan",
                "baseline",
                "golden_prefix",
                "fault_window",
                "classify",
                "other"
            ]
        );
    }
}
