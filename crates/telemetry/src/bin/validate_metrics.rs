//! Schema validator for `MUTINY_METRICS` JSON exports.
//!
//! Usage: `validate_metrics <path> [--require-prefix-share]`
//!
//! Exits nonzero when the file fails to parse, violates the version-1
//! schema, or (with `--require-prefix-share`) reports a zero
//! golden-prefix share — the CI check that the phase profiler actually
//! attributed experiment time.

use mutiny_telemetry::export::{parse, validate, Json};

fn main() {
    let mut args = std::env::args().skip(1);
    let path = match args.next() {
        Some(p) if p != "--require-prefix-share" => p,
        _ => {
            eprintln!("usage: validate_metrics <metrics.json> [--require-prefix-share]");
            std::process::exit(2);
        }
    };
    let mut require_share = false;
    for flag in args {
        match flag.as_str() {
            "--require-prefix-share" => require_share = true,
            other => {
                eprintln!("validate_metrics: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_metrics: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("validate_metrics: {path}: parse error: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = validate(&doc) {
        eprintln!("validate_metrics: {path}: schema violation: {e}");
        std::process::exit(1);
    }

    let share = doc
        .get("phases")
        .and_then(|p| p.get("golden_prefix_share"))
        .and_then(Json::as_num)
        .unwrap_or(0.0);
    if require_share && share <= 0.0 {
        eprintln!(
            "validate_metrics: {path}: golden_prefix_share is {share} — phase profiler \
             recorded no pre-injection experiment time"
        );
        std::process::exit(1);
    }

    let metrics = doc
        .get("metrics")
        .and_then(Json::as_arr)
        .map(<[Json]>::len)
        .unwrap_or(0);
    let timelines = doc
        .get("timelines")
        .and_then(Json::as_arr)
        .map(<[Json]>::len)
        .unwrap_or(0);
    println!(
        "validate_metrics: {path}: ok (version 1, {metrics} metrics, {timelines} timelines, \
         golden_prefix_share {share:.3})"
    );
}
