//! Per-experiment propagation timelines (sim-time, not wall-clock).
//!
//! A campaign row says *what* an injection did (`OF`/`CF` categories); a
//! timeline says *when*: the sim-time of the injection, of the first
//! observable divergence, of detection through the monitoring gauges, and
//! of recovery back to a clean steady state. Timelines are computed
//! **after** a run from artifacts the simulation already produces (the
//! injection record, the 3-second gauge samples, the client series, the
//! audit log), so collecting them cannot perturb the run.
//!
//! Aggregation: [`percentiles_by_family`] folds the recorded timelines
//! into per-fault-family p50/p95 *detection latency* (detection sim-time
//! minus injection sim-time) — the cloud-edge resilience literature's
//! headline number, and the one `BENCH_campaign.json` tracks.

/// Sim-time milestones of one injection experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Sim-time the injection fired (`None`: trigger never matched).
    pub injected_at: Option<u64>,
    /// First observable deviation on *any* channel: a failed client
    /// request, an apiserver audit error, or a deviating gauge sample.
    pub first_divergence: Option<u64>,
    /// First deviation visible to the *monitoring* view (gauge samples,
    /// audit errors, or a failed client request — the client series
    /// doubles as a blackbox probe) — what a Prometheus-style alert
    /// would fire on. Wire faults (drop/delay/partition…) often surface
    /// *only* through the probe: they break requests without dirtying
    /// stored state.
    pub detection: Option<u64>,
    /// First clean gauge sample after the last observed deviation, when
    /// the run ends clean (`None`: still deviating at the horizon, or
    /// nothing ever deviated).
    pub recovery: Option<u64>,
    /// The final gauge sample and client tail showed no deviation.
    pub steady_at_end: bool,
}

impl Timeline {
    /// Detection latency (detection − injection) in sim-ms, when both
    /// milestones exist.
    pub fn detection_latency_ms(&self) -> Option<u64> {
        match (self.injected_at, self.detection) {
            (Some(inj), Some(det)) => Some(det.saturating_sub(inj)),
            _ => None,
        }
    }

    /// Recovery latency (recovery − injection) in sim-ms.
    pub fn recovery_latency_ms(&self) -> Option<u64> {
        match (self.injected_at, self.recovery) {
            (Some(inj), Some(rec)) => Some(rec.saturating_sub(inj)),
            _ => None,
        }
    }
}

/// One experiment's timeline, tagged with its campaign coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineRecord {
    /// Scenario name.
    pub scenario: String,
    /// Fault-family name.
    pub fault: String,
    /// The milestones.
    pub timeline: Timeline,
}

/// Records one experiment timeline (no-op when collection is off).
pub fn record(rec: TimelineRecord) {
    if !crate::metrics_enabled() {
        return;
    }
    crate::record_timeline_local(rec);
}

/// Detection-latency aggregate for one fault family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyLatency {
    /// Fault-family name.
    pub family: String,
    /// Timelines recorded for the family.
    pub experiments: usize,
    /// Timelines with both an injection and a detection milestone.
    pub detected: usize,
    /// Median detection latency (sim-ms) over detected experiments.
    pub p50_ms: f64,
    /// 95th-percentile detection latency (sim-ms).
    pub p95_ms: f64,
}

/// Exact percentile over a sorted slice (nearest-rank on the index).
fn percentile(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64
}

/// Per-family p50/p95 detection latency over every timeline flushed to
/// the sink so far, sorted by family name (deterministic export order).
/// Call [`crate::flush_thread`] first on threads that recorded.
pub fn percentiles_by_family() -> Vec<FamilyLatency> {
    let sink = crate::sink().lock().expect("telemetry sink poisoned");
    let mut by_family: std::collections::BTreeMap<&str, (usize, Vec<u64>)> =
        std::collections::BTreeMap::new();
    for rec in &sink.timelines {
        let entry = by_family.entry(rec.fault.as_str()).or_default();
        entry.0 += 1;
        if let Some(lat) = rec.timeline.detection_latency_ms() {
            entry.1.push(lat);
        }
    }
    by_family
        .into_iter()
        .map(|(family, (experiments, mut lats))| {
            lats.sort_unstable();
            FamilyLatency {
                family: family.to_string(),
                experiments,
                detected: lats.len(),
                p50_ms: percentile(&lats, 0.50),
                p95_ms: percentile(&lats, 0.95),
            }
        })
        .collect()
}

/// A sorted copy of every timeline in the sink: by (scenario, fault,
/// injection time) so the export is independent of worker interleaving.
pub fn sorted_records() -> Vec<TimelineRecord> {
    let sink = crate::sink().lock().expect("telemetry sink poisoned");
    let mut out = sink.timelines.clone();
    out.sort_by(|a, b| {
        (
            &a.scenario,
            &a.fault,
            a.timeline.injected_at,
            a.timeline.detection,
        )
            .cmp(&(
                &b.scenario,
                &b.fault,
                b.timeline.injected_at,
                b.timeline.detection,
            ))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_subtract_and_saturate() {
        let t = Timeline {
            injected_at: Some(35_000),
            first_divergence: Some(35_200),
            detection: Some(38_000),
            recovery: Some(60_000),
            steady_at_end: true,
        };
        assert_eq!(t.detection_latency_ms(), Some(3_000));
        assert_eq!(t.recovery_latency_ms(), Some(25_000));
        let none = Timeline::default();
        assert_eq!(none.detection_latency_ms(), None);
        // A clock anomaly (detection stamped before injection) clamps to
        // zero instead of wrapping.
        let odd = Timeline {
            injected_at: Some(100),
            detection: Some(40),
            ..t
        };
        assert_eq!(odd.detection_latency_ms(), Some(0));
    }

    #[test]
    fn percentile_is_exact_on_small_sets() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7], 0.5), 7.0);
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 0.5), 3.0);
        assert_eq!(percentile(&[1, 2, 3, 4, 100], 0.95), 100.0);
    }
}
