//! Deterministic telemetry: the observability layer under every
//! simulated component.
//!
//! Three instruments, one rule. The instruments:
//!
//! * **sim-time metrics** ([`counter_add`], [`gauge_set`], [`gauge_max`],
//!   [`hist_record`]) — interned-key counters, gauges and log₂-bucket
//!   histograms stamped with the *simulated* clock ([`set_sim_now`]),
//!   recorded per worker thread and merged into a process-wide sink;
//! * **campaign phase profiler** ([`profile`]) — *wall-clock* time split
//!   into plan / baseline / golden-prefix / fault-window / classify, the
//!   numbers that size the fork-the-world win (ROADMAP item 1);
//! * **propagation timelines** ([`timeline`]) — per-experiment sim-times
//!   of injection → first divergence → detection → recovery, aggregated
//!   into per-fault-family detection-latency percentiles.
//!
//! The rule: **recording must never perturb the simulation.** Telemetry
//! is pure side-band bookkeeping — it draws no random numbers, schedules
//! no events, and changes no simulated state, so the campaign TSV is
//! byte-identical with telemetry on or off at any worker count (pinned by
//! `tests/metrics_determinism.rs`). When disabled every entry point is a
//! thread-local flag check and an early return.
//!
//! Enablement: `MUTINY_METRICS=<path>` (also selects the JSON export
//! destination, see [`export`]) or [`enable_in_process`] (what the
//! throughput bench uses — collect without exporting). The flag is
//! re-read at every [`run_begin`] (one world construction), so tests can
//! toggle the environment mid-process. All arithmetic saturates: a
//! counter that hits `u64::MAX` pins there instead of wrapping.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

pub mod export;
pub mod profile;
pub mod timeline;

/// Environment variable naming the JSON export path (its presence turns
/// metric collection on).
pub const METRICS_ENV: &str = "MUTINY_METRICS";

/// Number of log₂ histogram buckets: values `0`, `1`, `2..3`, `4..7`, …
/// bucket `i` holds values with `63 - leading_zeros == i - 1` (bucket 0
/// is the zero value). 17 buckets cover sim durations up to ~65 s; the
/// last bucket absorbs everything larger.
pub const HIST_BUCKETS: usize = 17;

static FORCED: AtomicBool = AtomicBool::new(false);

/// Turns collection on for the rest of the process regardless of the
/// environment (takes effect at each world's [`run_begin`]). Used by
/// benches that want phase/timeline data without writing a JSON file.
pub fn enable_in_process() {
    FORCED.store(true, Ordering::Relaxed);
}

/// True when `MUTINY_METRICS` is set non-empty or [`enable_in_process`]
/// was called. Reads the environment — callers on hot paths should use
/// the thread-local [`metrics_enabled`] instead.
pub fn requested() -> bool {
    FORCED.load(Ordering::Relaxed)
        || std::env::var(METRICS_ENV)
            .map(|v| !v.is_empty())
            .unwrap_or(false)
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SIM_NOW: Cell<u64> = const { Cell::new(0) };
    static RECORDER: RefCell<Recorder> = RefCell::new(Recorder::default());
}

/// Refreshes this thread's enabled flag from the environment/override.
/// Called once per simulated-world construction — the simulation itself
/// never reads the environment (determinism rule), so this is the only
/// place the flag can flip.
pub fn run_begin() {
    ENABLED.with(|e| e.set(requested()));
}

/// True when this thread is currently collecting metrics.
pub fn metrics_enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// Advances the ambient simulated clock used to stamp recordings.
/// Cheap enough to call unconditionally (one TLS store).
pub fn set_sim_now(now: u64) {
    SIM_NOW.with(|c| c.set(now));
}

fn sim_now() -> u64 {
    SIM_NOW.with(Cell::get)
}

// ---------------------------------------------------------------------------
// Metric model
// ---------------------------------------------------------------------------

/// A log₂-bucket histogram with saturating arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Samples recorded.
    pub count: u64,
    /// Saturating sum of all samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Log₂ buckets (see [`HIST_BUCKETS`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

/// The bucket index a value lands in.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        return 0;
    }
    (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
}

/// Lower bound of bucket `i` (for export/summary rendering).
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

impl Hist {
    /// Records one sample (saturating).
    pub fn record(&mut self, value: u64) {
        self.count = self.count.saturating_add(1);
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_of(value)] = self.buckets[bucket_of(value)].saturating_add(1);
    }

    /// Merges another histogram into this one (saturating).
    pub fn merge(&mut self, other: &Hist) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
    }

    /// Approximate quantile from the buckets (upper bound of the bucket
    /// holding the q-th sample; exact min/max for q at the extremes).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*b);
            if seen >= target {
                // Clamp the bucket bound into the observed range so the
                // approximation never exceeds the true extremes.
                let upper = if i + 1 < HIST_BUCKETS {
                    bucket_floor(i + 1).saturating_sub(1)
                } else {
                    u64::MAX
                };
                return upper.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Mean sample value.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One named instrument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Metric {
    /// Monotone event count; `last_at` is the sim-time of the last bump.
    Counter {
        /// Saturating total.
        total: u64,
        /// Sim-time of the most recent increment.
        last_at: u64,
    },
    /// Point-in-time value with a retained high-water mark.
    Gauge {
        /// Most recent value.
        last: u64,
        /// Largest value ever set.
        max: u64,
        /// Sim-time of the most recent set.
        last_at: u64,
    },
    /// Distribution of recorded values.
    Histogram(Hist),
}

impl Metric {
    fn merge(&mut self, other: &Metric) {
        match (self, other) {
            (
                Metric::Counter { total, last_at },
                Metric::Counter {
                    total: t2,
                    last_at: a2,
                },
            ) => {
                *total = total.saturating_add(*t2);
                *last_at = (*last_at).max(*a2);
            }
            (
                Metric::Gauge { last, max, last_at },
                Metric::Gauge {
                    last: l2,
                    max: m2,
                    last_at: a2,
                },
            ) => {
                // "Last" across threads is ill-defined; keep the one with
                // the later sim stamp (deterministic: sim stamps derive
                // from the plan, not the interleaving).
                if *a2 >= *last_at {
                    *last = *l2;
                    *last_at = *a2;
                }
                *max = (*max).max(*m2);
            }
            (Metric::Histogram(h), Metric::Histogram(h2)) => h.merge(h2),
            // A key recorded with two different instrument types is a
            // programming error; keep the first sighting rather than
            // panicking inside the merge path.
            _ => {}
        }
    }
}

/// FNV-1a, hand-rolled so the per-thread recorder's key lookup (one per
/// `counter_add`/`gauge_set`, millions per campaign) skips SipHash's
/// per-lookup setup cost. Metric keys are short trusted literals — no
/// HashDoS exposure — and the process-wide [`Sink`] merges by name, so
/// hash choice cannot affect exported results.
#[derive(Debug)]
struct FnvHasher(u64);

impl Default for FnvHasher {
    fn default() -> Self {
        FnvHasher(0xcbf2_9ce4_8422_2325)
    }
}

impl std::hash::Hasher for FnvHasher {
    fn write(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FnvBuild = std::hash::BuildHasherDefault<FnvHasher>;

/// Per-thread recorder: interned keys, metrics parallel to them.
#[derive(Debug, Default)]
struct Recorder {
    index: HashMap<Box<str>, usize, FnvBuild>,
    names: Vec<Box<str>>,
    metrics: Vec<Metric>,
    timelines: Vec<timeline::TimelineRecord>,
}

impl Recorder {
    fn slot(&mut self, key: &str, init: impl FnOnce() -> Metric) -> &mut Metric {
        if let Some(&i) = self.index.get(key) {
            return &mut self.metrics[i];
        }
        let boxed: Box<str> = key.into();
        self.index.insert(boxed.clone(), self.metrics.len());
        self.names.push(boxed);
        self.metrics.push(init());
        self.metrics.last_mut().expect("just pushed")
    }

    fn is_empty(&self) -> bool {
        self.metrics.is_empty() && self.timelines.is_empty()
    }
}

/// Bumps counter `key` by `delta` (saturating), stamped with the ambient
/// sim clock. No-op when collection is off.
pub fn counter_add(key: &str, delta: u64) {
    if !metrics_enabled() {
        return;
    }
    let now = sim_now();
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        if let Metric::Counter { total, last_at } = r.slot(key, || Metric::Counter {
            total: 0,
            last_at: 0,
        }) {
            *total = total.saturating_add(delta);
            *last_at = now;
        }
    });
}

/// Sets gauge `key` to `value`, retaining the high-water mark. No-op when
/// collection is off.
pub fn gauge_set(key: &str, value: u64) {
    if !metrics_enabled() {
        return;
    }
    let now = sim_now();
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        if let Metric::Gauge { last, max, last_at } = r.slot(key, || Metric::Gauge {
            last: 0,
            max: 0,
            last_at: 0,
        }) {
            *last = value;
            *max = (*max).max(value);
            *last_at = now;
        }
    });
}

/// Raises gauge `key` to `value` if it is a new high-water mark (the
/// depth-high-water idiom). No-op when collection is off.
pub fn gauge_max(key: &str, value: u64) {
    if !metrics_enabled() {
        return;
    }
    let now = sim_now();
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        if let Metric::Gauge { last, max, last_at } = r.slot(key, || Metric::Gauge {
            last: 0,
            max: 0,
            last_at: 0,
        }) {
            *last = value;
            *last_at = now;
            *max = (*max).max(value);
        }
    });
}

/// Records `value` into histogram `key`. No-op when collection is off.
pub fn hist_record(key: &str, value: u64) {
    if !metrics_enabled() {
        return;
    }
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        if let Metric::Histogram(h) = r.slot(key, || Metric::Histogram(Hist::default())) {
            h.record(value);
        }
    });
}

// ---------------------------------------------------------------------------
// The process-wide sink
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
pub(crate) struct Sink {
    pub(crate) metrics: BTreeMap<String, Metric>,
    pub(crate) timelines: Vec<timeline::TimelineRecord>,
}

pub(crate) fn sink() -> &'static Mutex<Sink> {
    static SINK: OnceLock<Mutex<Sink>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(Sink::default()))
}

/// Merges this thread's recordings into the process-wide sink and clears
/// them. The campaign executor calls this as each worker finishes (and on
/// the serial path), so nothing is lost when worker threads exit.
pub fn flush_thread() {
    let drained = RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        if r.is_empty() {
            return None;
        }
        Some(std::mem::take(&mut *r))
    });
    let Some(rec) = drained else { return };
    let mut sink = sink().lock().expect("telemetry sink poisoned");
    for (name, metric) in rec.names.iter().zip(rec.metrics.iter()) {
        match sink.metrics.get_mut(name.as_ref()) {
            Some(existing) => existing.merge(metric),
            None => {
                sink.metrics.insert(name.to_string(), metric.clone());
            }
        }
    }
    sink.timelines.extend(rec.timelines);
}

/// Clears the process-wide sink (and this thread's pending recordings).
/// Benches use it to scope reported metrics to the measured region.
pub fn reset() {
    RECORDER.with(|r| {
        *r.borrow_mut() = Recorder::default();
    });
    let mut sink = sink().lock().expect("telemetry sink poisoned");
    sink.metrics.clear();
    sink.timelines.clear();
}

/// The merged total of counter `key`, if it exists in the sink (flush
/// first). Test/assertion helper.
pub fn counter_value(key: &str) -> Option<u64> {
    let sink = sink().lock().expect("telemetry sink poisoned");
    match sink.metrics.get(key) {
        Some(Metric::Counter { total, .. }) => Some(*total),
        _ => None,
    }
}

/// The merged high-water mark of gauge `key`, if present (flush first).
pub fn gauge_high_water(key: &str) -> Option<u64> {
    let sink = sink().lock().expect("telemetry sink poisoned");
    match sink.metrics.get(key) {
        Some(Metric::Gauge { max, .. }) => Some(*max),
        _ => None,
    }
}

pub(crate) fn record_timeline_local(rec: timeline::TimelineRecord) {
    RECORDER.with(|r| r.borrow_mut().timelines.push(rec));
}

#[cfg(test)]
mod tests {
    use super::*;

    // Serialize tests that flip the global enable switch: the thread
    // flag is per-test-thread, but the sink is shared.
    fn with_enabled(f: impl FnOnce()) {
        ENABLED.with(|e| e.set(true));
        f();
        flush_thread();
        ENABLED.with(|e| e.set(false));
    }

    #[test]
    fn disabled_recording_is_a_noop() {
        ENABLED.with(|e| e.set(false));
        counter_add("test.noop.counter", 5);
        gauge_max("test.noop.gauge", 9);
        hist_record("test.noop.hist", 3);
        flush_thread();
        assert_eq!(counter_value("test.noop.counter"), None);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        with_enabled(|| {
            counter_add("test.sat.counter", u64::MAX - 1);
            counter_add("test.sat.counter", 10);
        });
        assert_eq!(counter_value("test.sat.counter"), Some(u64::MAX));
    }

    #[test]
    fn hist_buckets_and_quantiles() {
        let mut h = Hist::default();
        for v in [0u64, 1, 2, 3, 4, 200, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.sum, 1210);
        assert!(h.quantile(0.0) <= h.quantile(1.0));
        assert_eq!(h.quantile(1.0), 1000);
        // Saturation: a sample at u64::MAX must not wrap the sum.
        h.record(u64::MAX);
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.buckets[bucket_of(200)], 1);
        assert_eq!(h.buckets[bucket_of(1000)], 1);
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1); // only MAX overflows
    }

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(2), 2);
        assert_eq!(bucket_floor(3), 4);
    }

    #[test]
    fn gauge_tracks_high_water_across_merge() {
        with_enabled(|| {
            set_sim_now(100);
            gauge_max("test.hw.gauge", 4);
            set_sim_now(200);
            gauge_max("test.hw.gauge", 9);
            set_sim_now(300);
            gauge_max("test.hw.gauge", 2);
        });
        assert_eq!(gauge_high_water("test.hw.gauge"), Some(9));
    }
}
