//! Merges per-shard campaign TSVs back into the unsharded TSV.
//!
//! Usage: `merge_shards <out.tsv> <shard0.tsv> <shard1.tsv> …` with the
//! shard files given in shard order (`MUTINY_SHARD=0/n` first). The merge
//! is the exact inverse of the residue-class split, so the output is
//! byte-identical to the TSV an unsharded run of the same campaign
//! writes; `scripts/verify.sh` diffs exactly that.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 3 {
        eprintln!("usage: merge_shards <out.tsv> <shard0.tsv> <shard1.tsv> [...]");
        std::process::exit(2);
    }
    let out_path = &args[0];
    let texts: Vec<String> = args[1..]
        .iter()
        .map(|p| {
            std::fs::read_to_string(p)
                .unwrap_or_else(|e| panic!("merge_shards: cannot read {p}: {e}"))
        })
        .collect();
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    let merged = mutiny_bench::merge_shard_texts(&refs).unwrap_or_else(|| {
        eprintln!(
            "merge_shards: shard line counts are inconsistent with one \
             round-robin partition — are these shards of the same campaign?"
        );
        std::process::exit(1);
    });
    std::fs::write(out_path, merged)
        .unwrap_or_else(|e| panic!("merge_shards: cannot write {out_path}: {e}"));
    eprintln!("merge_shards: wrote {out_path} from {} shard(s)", texts.len());
}
