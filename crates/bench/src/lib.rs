//! Shared harness for the evaluation benches.
//!
//! The table/figure benches all consume the same injection campaign. This
//! module builds it once (per scale setting) and caches the result rows in
//! a TSV file under `target/`, so `cargo bench` regenerates every artifact
//! without rerunning thousands of cluster simulations per bench target.
//!
//! Environment knobs:
//!
//! * `MUTINY_SCALE` — fraction of the generated plan to execute
//!   (default 1.0 = the full campaign; the `campaign_throughput` bench
//!   defaults to 0.05 and `scripts/verify.sh` smokes at 0.02);
//! * `MUTINY_SCENARIOS` — comma-separated scenario names to run
//!   (default: the whole registry — the paper's three plus
//!   rolling-update, node-drain and hpa-autoscale);
//! * `MUTINY_FAULTS` — comma-separated fault-family names to inject
//!   (default: the whole fault registry — the paper's wire triplet plus
//!   delay, duplicate, partition and crash-restart);
//! * `MUTINY_GOLDEN_RUNS` — golden runs per scenario baseline
//!   (default 100, as in the paper);
//! * `MUTINY_SEED` — campaign base seed (default 2024);
//! * `MUTINY_CHECKPOINT_ROWS` — rows per checkpoint chunk (default 250);
//!   finished chunks are flushed to `<cache>.partial` as they complete,
//!   so an interrupted campaign resumes at the first unflushed row
//!   instead of restarting;
//! * `MUTINY_THREADS` — worker count for the work-stealing executor
//!   (default: available parallelism). Results are identical for any
//!   value — per-experiment seeds derive from the (campaign, scenario)
//!   pair — so this only trades wall-clock for cores;
//! * `MUTINY_FORK` — fork-the-world execution (default on): snapshot
//!   each scenario's fault-free prefix at `t0` and fork it per
//!   experiment; `MUTINY_FORK=0` replays every prefix from `t=0`
//!   (byte-identical rows, own `_nofork` cache identity);
//! * `MUTINY_SHARD` — `i/n`; plan the full cross-product but run only
//!   plan indices ≡ i (mod n), writing a `_shard<i>of<n>` TSV; the
//!   `merge_shards` bin reassembles the unsharded TSV byte-identically;
//! * `MUTINY_TRACES` — a directory of `*.trace` files; each is
//!   registered as a replay scenario (`trace-<stem>`) and joins the
//!   campaign cross-product unchanged;
//! * `MUTINY_GEN` — `<n>:<seed>`; registers `n` synthesized scenarios
//!   (`gen-<seed>-<i>`) composed from the scenario primitives;
//! * `MUTINY_TRACE_EXPORT` — a directory; after the campaign rows are
//!   available, one golden run per (non-replay) scenario is recorded
//!   through the apiserver request tap and written there as a trace file.
//!
//! The `campaign_throughput` bench writes `BENCH_campaign.json` at the
//! workspace root (experiments/sec, p50/p95 per-experiment time, and the
//! work-stealing vs static-chunk executor ratio) so every PR leaves a
//! perf-trajectory data point.

use mutiny_core::campaign::{
    plan_campaign, record_fields, run_campaign_range, CampaignResults, CampaignRow,
    PlannedExperiment, FORK_ENV,
};
use mutiny_core::classify::{ClientFailure, OrchestratorFailure};
use mutiny_core::exec;
use mutiny_core::golden::{build_baseline, Baseline};
use mutiny_core::injector::{FieldMutation, InjectionPoint, InjectionSpec, StorageOp};
use k8s_cluster::ClusterConfig;
use k8s_model::{Channel, ChannelId, Kind};
use mutiny_faults::{registry as fault_registry, Fault};
use mutiny_scenarios::{registry, Scenario};
use simkit::Rng;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::PathBuf;

/// Campaign scale factor from `MUTINY_SCALE`.
pub fn scale() -> f64 {
    std::env::var("MUTINY_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1.0f64).clamp(0.01, 1.0)
}

/// Golden runs per workload from `MUTINY_GOLDEN_RUNS` (paper: 100).
pub fn golden_runs() -> usize {
    std::env::var("MUTINY_GOLDEN_RUNS").ok().and_then(|s| s.parse().ok()).unwrap_or(100).max(4)
}

/// Campaign base seed from `MUTINY_SEED`.
pub fn seed() -> u64 {
    std::env::var("MUTINY_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(2024)
}

/// One-time dynamic scenario registration from `MUTINY_TRACES` (a
/// directory of `*.trace` files → replay scenarios) and `MUTINY_GEN`
/// (`<n>:<seed>` → synthesized scenarios). Guarded by a `OnceLock` and
/// called from [`scenarios`], so every scenario listing — and therefore
/// the campaign cross-product, the cache identity, and the
/// `MUTINY_SCENARIOS` filter — sees the dynamic registrations.
///
/// # Panics
///
/// Panics on an unreadable trace directory, a malformed trace file, or a
/// malformed `MUTINY_GEN` spec — silently running a smaller campaign
/// would corrupt the perf trajectory.
fn register_dynamic_scenarios() {
    static ONCE: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    ONCE.get_or_init(|| {
        if let Ok(dir) = std::env::var("MUTINY_TRACES") {
            let traces = mutiny_trace::register_traces(std::path::Path::new(&dir))
                .unwrap_or_else(|e| panic!("MUTINY_TRACES={dir}: {e}"));
            eprintln!(
                "[mutiny-bench] registered {} trace scenario(s) from {dir}",
                traces.len()
            );
        }
        if let Ok(spec) = std::env::var("MUTINY_GEN") {
            let (n, gen_seed) = spec
                .split_once(':')
                .and_then(|(n, s)| Some((n.parse::<u64>().ok()?, s.parse::<u64>().ok()?)))
                .unwrap_or_else(|| panic!("MUTINY_GEN must be <n>:<seed>, got {spec:?}"));
            let gens = mutiny_trace::register_generated(n, gen_seed)
                .unwrap_or_else(|e| panic!("MUTINY_GEN={spec}: {e}"));
            eprintln!(
                "[mutiny-bench] registered {} generated scenario(s) under seed {gen_seed}",
                gens.len()
            );
        }
    });
}

/// The scenarios this campaign covers: `MUTINY_SCENARIOS` (comma-
/// separated registry names) or the whole registry, including any
/// dynamic registrations from `MUTINY_TRACES` / `MUTINY_GEN`.
///
/// # Panics
///
/// Panics when the filter names a scenario the registry does not know —
/// silently running a smaller campaign would corrupt the perf trajectory.
pub fn scenarios() -> Vec<Scenario> {
    register_dynamic_scenarios();
    match std::env::var("MUTINY_SCENARIOS") {
        Ok(list) => list
            .split(',')
            .map(str::trim)
            .filter(|n| !n.is_empty())
            .map(|n| {
                registry::find(n).unwrap_or_else(|| {
                    panic!("MUTINY_SCENARIOS names unknown scenario {n:?}")
                })
            })
            .collect(),
        Err(_) => registry::all(),
    }
}

/// The fault families this campaign injects: `MUTINY_FAULTS` (comma-
/// separated registry names) or the whole fault registry.
///
/// # Panics
///
/// Panics when the filter names a family the registry does not know —
/// silently running a smaller campaign would corrupt the perf trajectory.
pub fn faults() -> Vec<Fault> {
    match std::env::var("MUTINY_FAULTS") {
        Ok(list) => list
            .split(',')
            .map(str::trim)
            .filter(|n| !n.is_empty())
            .map(|n| {
                fault_registry::find(n)
                    .unwrap_or_else(|| panic!("MUTINY_FAULTS names unknown fault family {n:?}"))
            })
            .collect(),
        Err(_) => fault_registry::all(),
    }
}

/// The campaign shard from `MUTINY_SHARD=i/n`: plan the full
/// cross-product, run only the experiments whose plan index ≡ `i`
/// (mod `n`). `None` when unset. Rows depend only on their planned
/// (scenario, spec) — never on the plan index — so the `n` shard TSVs
/// round-robin-merge ([`merge_shard_texts`]) byte-identically into the
/// unsharded campaign TSV.
///
/// # Panics
///
/// Panics on a malformed value (not `i/n`, `n == 0`, or `i >= n`): a
/// silently ignored shard spec would run the full campaign `n` times.
pub fn shard() -> Option<(usize, usize)> {
    let v = std::env::var("MUTINY_SHARD").ok()?;
    let parse = |v: &str| -> Option<(usize, usize)> {
        let (i, n) = v.split_once('/')?;
        let (i, n) = (i.trim().parse().ok()?, n.trim().parse().ok()?);
        (n >= 1 && i < n).then_some((i, n))
    };
    match parse(&v) {
        Some(pair) => Some(pair),
        None => panic!("MUTINY_SHARD must be i/n with i < n, got {v:?}"),
    }
}

/// Restricts `plan` to the configured [`shard`]'s residue class (plan
/// order preserved). The identity transform when no shard is set.
pub fn shard_plan(plan: Vec<PlannedExperiment>) -> Vec<PlannedExperiment> {
    match shard() {
        Some((i, n)) => plan
            .into_iter()
            .enumerate()
            .filter(|(idx, _)| idx % n == i)
            .map(|(_, p)| p)
            .collect(),
        None => plan,
    }
}

/// Round-robin-merges per-shard campaign TSVs (shard order `0..n`) back
/// into the unsharded TSV: merged row `j` is row `j / n` of shard
/// `j % n`, exactly inverting the residue-class split. Returns `None`
/// when the shard line counts are inconsistent with one round-robin
/// partition (e.g. files from different campaigns, or a shard missing).
pub fn merge_shard_texts(shards: &[&str]) -> Option<String> {
    let n = shards.len();
    if n == 0 {
        return None;
    }
    let lines: Vec<Vec<&str>> = shards.iter().map(|s| s.lines().collect()).collect();
    let total: usize = lines.iter().map(Vec::len).sum();
    let mut out = String::with_capacity(shards.iter().map(|s| s.len()).sum());
    for j in 0..total {
        // Inconsistent shard sizes leave some index unservable before
        // `total` rows are emitted.
        let row = lines[j % n].get(j / n)?;
        out.push_str(row);
        out.push('\n');
    }
    Some(out)
}

/// Rows per checkpoint chunk from `MUTINY_CHECKPOINT_ROWS`.
pub fn checkpoint_rows() -> usize {
    std::env::var("MUTINY_CHECKPOINT_ROWS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(250)
}

/// The workspace target directory where campaign/baseline caches live.
fn cache_dir() -> PathBuf {
    // Benches run with the package directory as CWD, so a relative
    // `target/` would point inside `crates/bench`; resolve the workspace
    // target directory explicitly and make sure it exists.
    let dir = std::env::var("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..").join("target")
        });
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// The TSV cache location for the current environment settings. Public
/// so the checkpoint-resume tests (and `scripts/verify.sh`) can find the
/// exact file a [`campaign`] call will read and write.
pub fn cache_path() -> PathBuf {
    // The scenario and fault-family sets are part of the cache identity:
    // a filtered run must not be mistaken for (or poison) the full
    // campaign's rows.
    let scenario_names: Vec<&str> = scenarios().iter().map(|s| s.name()).collect();
    let fault_names: Vec<&str> = faults().iter().map(|f| f.name()).collect();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in scenario_names.join(",").bytes().chain("|".bytes()).chain(fault_names.join(",").bytes())
    {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    // A run with the decode cache disabled gets its own cache identity:
    // `scripts/verify.sh` diffs the `_nodc` TSV against the cached-mode
    // TSV byte for byte, which only works if the two runs cannot reuse
    // (or poison) each other's rows.
    let nodc = if std::env::var("MUTINY_DECODE_CACHE").map(|v| v == "0").unwrap_or(false) {
        "_nodc"
    } else {
        ""
    };
    // Same isolation for the fork-the-world escape hatch: verify.sh diffs
    // the `_nofork` TSV against the forked-mode TSV byte for byte.
    let nofork = if std::env::var(FORK_ENV).map(|v| v == "0").unwrap_or(false) {
        "_nofork"
    } else {
        ""
    };
    // The log-structured storage engine must produce byte-identical
    // rows, but its TSV still gets its own cache identity so
    // `scripts/verify.sh` can diff a `MUTINY_STORAGE=log` run against
    // the `mem` TSV without either run reusing the other's cached rows.
    let storage = match etcd_sim::StorageKind::from_env() {
        etcd_sim::StorageKind::Mem => "",
        etcd_sim::StorageKind::Log => "_log",
    };
    // Shards write disjoint row subsets: each residue class gets its own
    // cache (and checkpoint) identity so shards can run concurrently and
    // `merge_shard_texts` can reassemble the unsharded TSV.
    let shard_tag = match shard() {
        Some((i, n)) => format!("_shard{i}of{n}"),
        None => String::new(),
    };
    cache_dir().join(format!(
        "mutiny_campaign_s{:.2}_g{}_seed{}_sc{}_f{}_{:08x}{}{}{}{}.tsv",
        scale(),
        golden_runs(),
        seed(),
        scenario_names.len(),
        fault_names.len(),
        h & 0xffff_ffff,
        storage,
        nodc,
        nofork,
        shard_tag,
    ))
}

/// Disk-cache location for one scenario's golden baseline. The identity
/// is `(scenario, golden runs, seed)` — exactly the inputs of
/// [`build_baseline`] beyond the (fixed) default cluster.
///
/// Like the campaign TSV cache, the identity does **not** include a code
/// fingerprint: caches under `target/` trust that the simulation code
/// has not changed since they were written. `scripts/verify.sh` clears
/// both cache families up front for exactly that reason; delete
/// `target/mutiny_baseline_*.tsv` by hand after local changes that move
/// golden behavior.
fn baseline_cache_path(sc: Scenario) -> PathBuf {
    cache_dir().join(format!(
        "mutiny_baseline_{}_g{}_seed{}.tsv",
        sc.name(),
        golden_runs(),
        seed()
    ))
}

/// Builds the per-scenario baselines, sharing them across bench targets
/// through a disk cache (same template as the campaign TSV checkpoint:
/// parse-or-rebuild, atomic promote via rename). Before this cache, every
/// bench target whose campaign TSV was cold re-ran `golden_runs × |scenarios|`
/// golden simulations; now the first target to need a baseline pays for
/// it and the other sixteen load it back.
pub fn baselines() -> HashMap<Scenario, Baseline> {
    use mutiny_telemetry::profile::{self, Phase};
    let cluster = ClusterConfig::default();
    let runs = golden_runs();
    let mut out = HashMap::new();
    for sc in scenarios() {
        let path = baseline_cache_path(sc);
        if let Ok(text) = std::fs::read_to_string(&path) {
            if let Some(b) = parse_baseline(&text) {
                eprintln!("[mutiny-bench] loaded cached baseline from {}", path.display());
                out.insert(sc, b);
                continue;
            }
            eprintln!("[mutiny-bench] discarding stale baseline cache {}", path.display());
            let _ = std::fs::remove_file(&path);
        }
        let b = profile::time(Phase::Baseline, || build_baseline(&cluster, sc, runs, seed()));
        // Atomic promote: a reader never observes a half-written cache.
        let tmp = path.with_extension("tsv.partial");
        let persisted = std::fs::write(&tmp, render_baseline(&b))
            .and_then(|()| std::fs::rename(&tmp, &path));
        if let Err(e) = persisted {
            eprintln!(
                "[mutiny-bench] warning: could not persist baseline cache {}: {e}",
                path.display()
            );
        }
        out.insert(sc, b);
    }
    out
}

/// Generates the full campaign plan — the cross-product of every
/// scenario in [`scenarios`] with every fault family in [`faults`] —
/// subsampled by [`scale`].
pub fn plan() -> Vec<PlannedExperiment> {
    use mutiny_telemetry::profile::{self, Phase};
    profile::time(Phase::Plan, || {
        let cluster = ClusterConfig::default();
        let families = faults();
        let mut rng = Rng::new(seed());
        let mut all = Vec::new();
        for sc in scenarios() {
            let traffic =
                record_fields(&cluster, sc, vec![Channel::ApiToEtcd], seed() ^ 0xF1E1D);
            all.extend(plan_campaign(&traffic, sc, &families, &mut rng));
        }
        let s = scale();
        if s >= 0.999 {
            return all;
        }
        let keep_every = (1.0 / s).round().max(1.0) as usize;
        all.into_iter().enumerate().filter(|(i, _)| i % keep_every == 0).map(|(_, p)| p).collect()
    })
}

/// True when `rows` is exactly the result prefix of `plan` (same
/// scenarios, same specs, in order) — the safety check before resuming
/// from a checkpoint written by an interrupted campaign.
fn rows_are_plan_prefix(rows: &CampaignResults, plan: &[PlannedExperiment]) -> bool {
    rows.len() <= plan.len()
        && rows.rows.iter().zip(plan).all(|(row, planned)| {
            row.scenario == planned.scenario
                && row.fault == planned.fault
                && row.spec == planned.spec
        })
}

/// Parses checkpoint text, tolerating a torn trailing row.
///
/// A process killed mid-flush leaves the `.partial` file ending in an
/// incomplete line (every complete flush is newline-terminated), so only
/// the bytes past the last `\n` can be torn — they are dropped and the
/// well-formed prefix is kept. Returns the parsed prefix rows plus the
/// byte length of that prefix, so the caller can truncate the file back
/// to a clean flush boundary before appending. A malformed line *inside*
/// the newline-terminated prefix is not tearing — the checkpoint is
/// corrupt/stale and `None` tells the caller to discard it.
fn parse_checkpoint(text: &str) -> Option<(CampaignResults, usize)> {
    let clean = match text.rfind('\n') {
        Some(i) => &text[..=i],
        None => "", // a single torn line: no clean prefix at all
    };
    let rows = parse_rows(clean)?;
    Some((rows, clean.len()))
}

/// The campaign results: loaded from the TSV cache when present, executed
/// otherwise. Execution checkpoints every [`checkpoint_rows`] finished
/// experiments to `<cache>.partial` — killing the process mid-campaign
/// loses at most one chunk (a torn trailing row is truncated away on
/// resume), and the next call resumes from the checkpoint (rows are
/// index-deterministic, so a resumed campaign is byte-identical to an
/// uninterrupted one). The finished checkpoint is atomically renamed to
/// the final cache. Checkpoint IO failures never abort the campaign:
/// they downgrade to warnings and the run completes in memory.
pub fn campaign() -> CampaignResults {
    let path = cache_path();
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Some(results) = parse_rows(&text) {
            eprintln!("[mutiny-bench] loaded {} cached rows from {}", results.len(), path.display());
            return results;
        }
    }
    let cluster = ClusterConfig::default();
    // Plan the full cross-product, then keep only this process's residue
    // class (no shard: the identity transform). Sharded rows are the
    // exact rows the unsharded campaign would produce at those indices.
    let plan = shard_plan(plan());
    let partial_path = path.with_extension("tsv.partial");

    // Resume from a checkpoint when its rows match the plan prefix.
    let mut done = CampaignResults::default();
    if let Ok(text) = std::fs::read_to_string(&partial_path) {
        match parse_checkpoint(&text) {
            Some((rows, clean_len)) if rows_are_plan_prefix(&rows, &plan) => {
                if clean_len < text.len() {
                    // Torn tail from a kill mid-flush: truncate back to
                    // the last complete row so appended chunks produce a
                    // byte-identical final cache.
                    eprintln!(
                        "[mutiny-bench] truncating torn checkpoint tail ({} bytes)",
                        text.len() - clean_len
                    );
                    let truncated = std::fs::OpenOptions::new()
                        .write(true)
                        .open(&partial_path)
                        .and_then(|f| f.set_len(clean_len as u64));
                    if truncated.is_err() {
                        eprintln!(
                            "[mutiny-bench] discarding untruncatable checkpoint {}",
                            partial_path.display()
                        );
                        let _ = std::fs::remove_file(&partial_path);
                        done = CampaignResults::default();
                    } else {
                        done = rows;
                    }
                } else {
                    done = rows;
                }
                if !done.is_empty() {
                    eprintln!(
                        "[mutiny-bench] resuming from checkpoint: {}/{} rows already done",
                        done.len(),
                        plan.len()
                    );
                }
            }
            _ => {
                eprintln!("[mutiny-bench] discarding stale checkpoint {}", partial_path.display());
                let _ = std::fs::remove_file(&partial_path);
            }
        }
    }

    // The checkpoint file is best-effort: an IO error mid-campaign must
    // not abort thousands of finished experiments, so failures disable
    // further checkpointing (and the final promote falls back to a
    // direct write of the in-memory rows).
    let can_promote;
    if done.len() < plan.len() {
        eprintln!(
            "[mutiny-bench] building baselines ({} golden runs × {} scenarios)…",
            golden_runs(),
            scenarios().len()
        );
        let baselines = baselines();
        eprintln!(
            "[mutiny-bench] running {} injection experiments (scale {})…",
            plan.len() - done.len(),
            scale()
        );
        let t = std::time::Instant::now();
        let chunk = checkpoint_rows();
        let mut checkpoint = match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&partial_path)
        {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!(
                    "[mutiny-bench] warning: cannot open campaign checkpoint {}: {e}; \
                     continuing without checkpointing",
                    partial_path.display()
                );
                None
            }
        };
        while done.len() < plan.len() {
            let start = done.len();
            let end = (start + chunk).min(plan.len());
            let part = run_campaign_range(
                &cluster,
                &plan,
                &baselines,
                seed(),
                start..end,
                exec::default_threads(end - start),
            );
            if let Some(f) = checkpoint.as_mut() {
                let flushed =
                    f.write_all(render_rows(&part).as_bytes()).and_then(|()| f.flush());
                if let Err(e) = flushed {
                    eprintln!(
                        "[mutiny-bench] warning: campaign checkpoint write failed: {e}; \
                         continuing without checkpointing"
                    );
                    checkpoint = None;
                }
            }
            done.merge(part);
            eprintln!("[mutiny-bench] checkpoint: {}/{} rows", done.len(), plan.len());
        }
        eprintln!("[mutiny-bench] campaign finished in {:?}", t.elapsed());
        can_promote = checkpoint.is_some();
    } else {
        // The checkpoint already held every row (read and parsed above);
        // it is the finished campaign.
        can_promote = true;
    }

    // Promote the finished checkpoint to the final cache — but only when
    // every chunk actually reached it; a checkpoint abandoned after an IO
    // error is a prefix, and renaming it would cache a truncated
    // campaign. The fallback writes the in-memory rows directly, and the
    // partial is only removed once the final cache actually holds them —
    // on a full disk the checkpoint is the sole persisted progress.
    let promoted = can_promote && std::fs::rename(&partial_path, &path).is_ok();
    if !promoted {
        let wrote = std::fs::File::create(&path)
            .and_then(|mut f| f.write_all(render_rows(&done).as_bytes()));
        match wrote {
            Ok(()) => {
                let _ = std::fs::remove_file(&partial_path);
            }
            Err(e) => eprintln!(
                "[mutiny-bench] warning: could not write campaign cache {}: {e}; \
                 keeping the checkpoint for the next run",
                path.display()
            ),
        }
    }
    export_traces_if_requested();
    mutiny_telemetry::export::export_if_requested();
    done
}

/// Exports golden-run traces when `MUTINY_TRACE_EXPORT=<dir>` is set:
/// one recorded golden run (at the campaign seed) per selected scenario,
/// written as `<dir>/<scenario>.trace`. Replay scenarios (`trace-*`) are
/// skipped — re-recording a replay adds nothing and would shadow its own
/// source file. Runs once per process; [`campaign`] calls it after the
/// rows are available, so `MUTINY_TRACE_EXPORT=traces cargo bench` on
/// any campaign bench leaves the trace files behind even on a warm
/// cache.
///
/// # Panics
///
/// Panics when a trace cannot be written — a silently missing export
/// would break the replay leg that consumes it.
pub fn export_traces_if_requested() {
    static ONCE: std::sync::OnceLock<()> = std::sync::OnceLock::new();
    ONCE.get_or_init(|| {
        let Ok(dir) = std::env::var("MUTINY_TRACE_EXPORT") else {
            return;
        };
        let dir = PathBuf::from(dir);
        let cluster = ClusterConfig::default();
        for sc in scenarios() {
            if sc.name().starts_with("trace-") {
                continue;
            }
            let path = mutiny_trace::export_scenario(&cluster, sc, seed(), &dir)
                .unwrap_or_else(|e| panic!("MUTINY_TRACE_EXPORT: {}: {e}", sc.name()));
            eprintln!("[mutiny-bench] exported trace {}", path.display());
        }
    });
}

// --- baseline (de)serialization --------------------------------------------
//
// Golden baselines must round-trip exactly: z-scores are computed against
// `avg_response` and `golden_maes`, so a lossy float would shift every
// classification in the benches that load the cache instead of building.
// Rust's `{}` float formatting is shortest-round-trip, and `parse::<f64>`
// restores the identical bit pattern.

/// Renders a [`Baseline`] in the line-oriented baseline cache schema.
/// Public so the trace round-trip tests can assert that a replayed run's
/// baseline is byte-identical to its recorded source, not just equal.
pub fn render_baseline(b: &Baseline) -> String {
    fn floats(out: &mut String, name: &str, vs: &[f64]) {
        out.push_str(name);
        out.push('\t');
        for (i, v) in vs.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(&v.to_string());
        }
        out.push('\n');
    }
    let mut out = String::from("mutiny-baseline-v2\n");
    floats(&mut out, "avg_response", &b.avg_response);
    floats(&mut out, "golden_maes", &b.golden_maes);
    floats(&mut out, "golden_worst_startup", &b.golden_worst_startup);
    floats(&mut out, "golden_last_creation", &b.golden_last_creation);
    out.push_str("expected_ready");
    for (k, v) in &b.expected_ready {
        out.push_str(&format!("\t{}={v}", escape(k)));
    }
    out.push('\n');
    out.push_str("expected_endpoints");
    for (k, v) in &b.expected_endpoints {
        out.push_str(&format!("\t{}={v}", escape(k)));
    }
    out.push('\n');
    out.push_str(&format!("expected_pods_created\t{}\n", b.expected_pods_created));
    out.push_str(&format!("golden_pods_created_max\t{}\n", b.golden_pods_created_max));
    out.push_str(&format!("expected_dns_ready\t{}\n", b.expected_dns_ready));
    out.push_str(&format!("golden_settle_ms\t{}\n", b.golden_settle_ms));
    out
}

/// Parses the baseline cache schema; `None` on any mismatch (the caller
/// rebuilds from golden runs, exactly like a stale campaign checkpoint).
pub fn parse_baseline(text: &str) -> Option<Baseline> {
    let mut lines = text.lines();
    if lines.next()? != "mutiny-baseline-v2" {
        return None;
    }
    fn floats(line: &str, name: &str) -> Option<Vec<f64>> {
        let rest = line.strip_prefix(name)?;
        if rest.is_empty() {
            return Some(Vec::new()); // field present, no samples
        }
        let rest = rest.strip_prefix('\t')?;
        if rest.is_empty() {
            return Some(Vec::new());
        }
        rest.split(' ').map(|v| v.parse().ok()).collect()
    }
    fn map_entries<V: std::str::FromStr>(
        line: &str,
        name: &str,
    ) -> Option<std::collections::BTreeMap<String, V>> {
        let rest = line.strip_prefix(name)?;
        let mut out = std::collections::BTreeMap::new();
        for pair in rest.split('\t').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=')?;
            out.insert(unescape(k), v.parse().ok()?);
        }
        Some(out)
    }
    let b = Baseline {
        avg_response: floats(lines.next()?, "avg_response")?,
        golden_maes: floats(lines.next()?, "golden_maes")?,
        golden_worst_startup: floats(lines.next()?, "golden_worst_startup")?,
        golden_last_creation: floats(lines.next()?, "golden_last_creation")?,
        expected_ready: map_entries(lines.next()?, "expected_ready")?,
        expected_endpoints: map_entries(lines.next()?, "expected_endpoints")?,
        expected_pods_created: lines.next()?.strip_prefix("expected_pods_created\t")?.parse().ok()?,
        golden_pods_created_max: lines
            .next()?
            .strip_prefix("golden_pods_created_max\t")?
            .parse()
            .ok()?,
        expected_dns_ready: lines.next()?.strip_prefix("expected_dns_ready\t")?.parse().ok()?,
        golden_settle_ms: lines.next()?.strip_prefix("golden_settle_ms\t")?.parse().ok()?,
    };
    if lines.next().is_some() {
        return None; // trailing garbage: treat as stale
    }
    Some(b)
}

// --- TSV (de)serialization -------------------------------------------------
//
// The injection *point* must round-trip exactly: the ablation and Figure 5
// benches replay specs taken from cached rows, and a lossy reconstruction
// would silently replay different faults than the campaign measured.

fn escape(s: &str) -> String {
    s.replace('%', "%25").replace('\t', "%09").replace('\n', "%0A")
}

fn unescape(s: &str) -> String {
    s.replace("%0A", "\n").replace("%09", "\t").replace("%25", "%")
}

fn render_point(point: &InjectionPoint) -> String {
    use protowire::reflect::Value;
    match point {
        InjectionPoint::Drop => "drop".to_owned(),
        InjectionPoint::Delay { hold_ms } => format!("delay:{hold_ms}"),
        InjectionPoint::Duplicate { echo_ms } => format!("dup:{echo_ms}"),
        InjectionPoint::Partition { from_off, dur_ms } => {
            format!("partition:{from_off}:{dur_ms}")
        }
        InjectionPoint::Crash { from_off, dur_ms } => format!("crash:{from_off}:{dur_ms}"),
        InjectionPoint::Config { defect, param } => {
            format!("config:{}:{param}", escape(defect))
        }
        InjectionPoint::Storage { op, from_off, dur_ms, replica, param } => {
            format!("storage:{op}:{from_off}:{dur_ms}:{replica}:{param}")
        }
        InjectionPoint::ProtoByte { byte_frac, bit } => format!("proto:{byte_frac}:{bit}"),
        InjectionPoint::Field { path, mutation } => {
            let m = match mutation {
                FieldMutation::FlipIntBit(b) => format!("flipint:{b}"),
                FieldMutation::FlipStringChar(i) => format!("flipchar:{i}"),
                FieldMutation::FlipBool => "flipbool".to_owned(),
                FieldMutation::Set(Value::Int(v)) => format!("set-int:{v}"),
                FieldMutation::Set(Value::Bool(v)) => format!("set-bool:{v}"),
                FieldMutation::Set(Value::Str(s)) => format!("set-str:{}", escape(s)),
            };
            format!("field:{}:{m}", escape(path))
        }
    }
}

fn parse_point(s: &str) -> Option<InjectionPoint> {
    use protowire::reflect::Value;
    if s == "drop" {
        return Some(InjectionPoint::Drop);
    }
    if let Some(ms) = s.strip_prefix("delay:") {
        return Some(InjectionPoint::Delay { hold_ms: ms.parse().ok()? });
    }
    if let Some(ms) = s.strip_prefix("dup:") {
        return Some(InjectionPoint::Duplicate { echo_ms: ms.parse().ok()? });
    }
    if let Some(rest) = s.strip_prefix("partition:") {
        let (from, dur) = rest.split_once(':')?;
        return Some(InjectionPoint::Partition {
            from_off: from.parse().ok()?,
            dur_ms: dur.parse().ok()?,
        });
    }
    if let Some(rest) = s.strip_prefix("crash:") {
        let (from, dur) = rest.split_once(':')?;
        return Some(InjectionPoint::Crash {
            from_off: from.parse().ok()?,
            dur_ms: dur.parse().ok()?,
        });
    }
    if let Some(rest) = s.strip_prefix("config:") {
        // The param is the last `:`-separated piece; the defect class
        // itself never contains raw colons after escaping, but rsplit
        // keeps third-party defect names safe anyway.
        let (defect, param) = rest.rsplit_once(':')?;
        return Some(InjectionPoint::Config {
            defect: unescape(defect),
            param: param.parse().ok()?,
        });
    }
    if let Some(rest) = s.strip_prefix("storage:") {
        let mut parts = rest.split(':');
        let op = match parts.next()? {
            "disk-full" => StorageOp::DiskFull,
            "compaction-pressure" => StorageOp::CompactionPressure,
            "corrupt-at-rest" => StorageOp::CorruptAtRest,
            "inconsistent-view" => StorageOp::InconsistentView,
            _ => return None,
        };
        let point = InjectionPoint::Storage {
            op,
            from_off: parts.next()?.parse().ok()?,
            dur_ms: parts.next()?.parse().ok()?,
            replica: parts.next()?.parse().ok()?,
            param: parts.next()?.parse().ok()?,
        };
        if parts.next().is_some() {
            return None;
        }
        return Some(point);
    }
    if let Some(rest) = s.strip_prefix("proto:") {
        let (frac, bit) = rest.split_once(':')?;
        return Some(InjectionPoint::ProtoByte {
            byte_frac: frac.parse().ok()?,
            bit: bit.parse().ok()?,
        });
    }
    let rest = s.strip_prefix("field:")?;
    let (path, m) = rest.split_once(':')?;
    let path = unescape(path);
    let mutation = if let Some(b) = m.strip_prefix("flipint:") {
        FieldMutation::FlipIntBit(b.parse().ok()?)
    } else if let Some(i) = m.strip_prefix("flipchar:") {
        FieldMutation::FlipStringChar(i.parse().ok()?)
    } else if m == "flipbool" {
        FieldMutation::FlipBool
    } else if let Some(v) = m.strip_prefix("set-int:") {
        FieldMutation::Set(Value::Int(v.parse().ok()?))
    } else if let Some(v) = m.strip_prefix("set-bool:") {
        FieldMutation::Set(Value::Bool(v.parse().ok()?))
    } else if let Some(v) = m.strip_prefix("set-str:") {
        FieldMutation::Set(Value::Str(unescape(v)))
    } else {
        return None;
    };
    Some(InjectionPoint::Field { path, mutation })
}

/// Renders campaign rows in the TSV cache schema (one line per row).
/// Public so the acceptance tests can assert byte-identity of the TSV
/// across worker counts, not just row equality.
pub fn render_rows(results: &CampaignResults) -> String {
    let mut out = String::new();
    for r in &results.rows {
        // z uses Rust's shortest round-trip float formatting: resuming
        // from a checkpoint re-parses flushed rows, and they must equal
        // the freshly computed ones exactly. The fault-family name and
        // the channel ride along so non-wire families (whose specs may
        // target any channel) round-trip exactly. Config rows carry a
        // 13th defect-class column; it is re-derived from the point on
        // parse, so pre-config 12-column caches still load and re-render
        // byte-identically.
        out.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            r.scenario.name(),
            r.fault.name(),
            r.of.label(),
            r.cf.label(),
            r.z,
            r.fired,
            r.activated,
            r.user_error,
            render_point(&r.spec.point),
            r.spec.channel,
            r.spec.kind,
            r.spec.occurrence,
        ));
        if let InjectionPoint::Config { defect, .. } = &r.spec.point {
            out.push('\t');
            out.push_str(&escape(defect));
        }
        out.push('\n');
    }
    out
}

fn parse_rows(text: &str) -> Option<CampaignResults> {
    let mut rows = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        // 12 columns pre-config; config rows append a 13th defect-class
        // column, ignored on parse (re-derived from the point).
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() != 12 && f.len() != 13 {
            return None;
        }
        let scenario = registry::find(f[0])?;
        let fault = fault_registry::find(f[1])?;
        let of = OrchestratorFailure::ALL.iter().copied().find(|o| o.label() == f[2])?;
        let cf = ClientFailure::ALL.iter().copied().find(|c| c.label() == f[3])?;
        let point = parse_point(f[8])?;
        let path = match &point {
            InjectionPoint::Field { path, .. } => Some(path.clone()),
            _ => None,
        };
        let channel = ChannelId::parse(f[9])?;
        let kind = Kind::parse(f[10])?;
        let occurrence: u32 = f[11].parse().ok()?;
        rows.push(CampaignRow {
            scenario,
            spec: InjectionSpec { channel, kind, point, occurrence },
            fault,
            of,
            cf,
            z: f[4].parse().ok()?,
            fired: f[5] == "true",
            activated: f[6] == "true",
            user_error: f[7] == "true",
            path,
        });
    }
    Some(CampaignResults { rows })
}

/// Round-trips the TSV cache (exercised by unit tests). The spec must
/// survive exactly: ablation and replay benches re-run cached specs.
pub fn roundtrip_check(results: &CampaignResults) -> bool {
    parse_rows(&render_rows(results))
        .map(|r| {
            r.len() == results.len()
                && r.rows.iter().zip(&results.rows).all(|(a, b)| {
                    a.scenario == b.scenario
                        && a.fault == b.fault
                        && a.of == b.of
                        && a.cf == b.cf
                        && a.path == b.path
                        && a.spec == b.spec
                })
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_roundtrip_preserves_rows() {
        use protowire::reflect::Value;
        let row = |spec: InjectionSpec, fault: Fault| CampaignRow {
            scenario: mutiny_scenarios::DEPLOY,
            path: match &spec.point {
                InjectionPoint::Field { path, .. } => Some(path.clone()),
                _ => None,
            },
            spec,
            fault,
            of: OrchestratorFailure::Sta,
            cf: ClientFailure::Su,
            z: 12.5,
            fired: true,
            activated: false,
            user_error: true,
        };
        let spec = |point| InjectionSpec {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::Pod,
            point,
            occurrence: 3,
        };
        let kcm_spec = |point| InjectionSpec {
            channel: Channel::KcmToApi.into(),
            kind: Kind::Lease,
            point,
            occurrence: 1,
        };
        let rows = vec![
            row(spec(InjectionPoint::Drop), mutiny_faults::DROP),
            row(
                spec(InjectionPoint::ProtoByte { byte_frac: 0.375, bit: 6 }),
                mutiny_faults::BIT_FLIP,
            ),
            row(
                spec(InjectionPoint::Field {
                    path: "spec.template.metadata.labels['app']".into(),
                    mutation: FieldMutation::FlipStringChar(1),
                }),
                mutiny_faults::BIT_FLIP,
            ),
            row(
                spec(InjectionPoint::Field {
                    path: "spec.replicas".into(),
                    mutation: FieldMutation::FlipIntBit(4),
                }),
                mutiny_faults::BIT_FLIP,
            ),
            row(
                spec(InjectionPoint::Field {
                    path: "spec.nodeName".into(),
                    mutation: FieldMutation::Set(Value::Str("ghost node\twith%escapes".into())),
                }),
                mutiny_faults::VALUE_SET,
            ),
            row(
                spec(InjectionPoint::Field {
                    path: "spec.paused".into(),
                    mutation: FieldMutation::FlipBool,
                }),
                mutiny_faults::BIT_FLIP,
            ),
            // The new families round-trip too, including non-store
            // channels (the channel column exists for exactly this).
            row(spec(InjectionPoint::Delay { hold_ms: 3_000 }), mutiny_faults::DELAY),
            row(spec(InjectionPoint::Duplicate { echo_ms: 1_500 }), mutiny_faults::DUPLICATE),
            row(
                spec(InjectionPoint::Partition { from_off: 2_000, dur_ms: 4_000 }),
                mutiny_faults::PARTITION,
            ),
            row(
                kcm_spec(InjectionPoint::Crash { from_off: 2_000, dur_ms: 6_000 }),
                mutiny_faults::CRASH_RESTART,
            ),
        ];
        let results = CampaignResults { rows };
        assert!(roundtrip_check(&results));
    }

    #[test]
    fn node_scoped_rows_roundtrip_and_old_caches_still_parse() {
        // Node-level family rows carry `class@node` in the channel
        // column and must survive the cache round-trip exactly.
        let node_row = |fault: Fault, node: &str, point| CampaignRow {
            scenario: mutiny_scenarios::DEPLOY,
            spec: InjectionSpec {
                channel: ChannelId::node_scoped(Channel::KubeletToApi, node),
                kind: Kind::Node,
                point,
                occurrence: 1,
            },
            fault,
            of: OrchestratorFailure::Tim,
            cf: ClientFailure::Nsi,
            z: 1.5,
            fired: true,
            activated: false,
            user_error: false,
            path: None,
        };
        let results = CampaignResults {
            rows: vec![
                node_row(
                    mutiny_faults::KUBELET_CRASH_RESTART,
                    "w3",
                    InjectionPoint::Crash { from_off: 2_500, dur_ms: 60_000 },
                ),
                node_row(
                    mutiny_faults::NODE_PARTITION,
                    "w1",
                    InjectionPoint::Partition { from_off: 2_000, dur_ms: 8_000 },
                ),
            ],
        };
        let text = render_rows(&results);
        assert!(text.contains("\tkubelet->apiserver@w3\t"), "node column missing: {text}");
        assert!(roundtrip_check(&results));

        // A cache written before per-node channel identity existed keeps
        // the bare class in the channel column; it must still parse, to
        // a class-wide wire.
        let old_cache = "deploy\tdrop\tNo\tNSI\t0\ttrue\tfalse\tfalse\tdrop\tapiserver->etcd\tPod\t1\n";
        let parsed = parse_rows(old_cache).expect("pre-node cache line must parse");
        assert_eq!(parsed.len(), 1);
        let spec = &parsed.rows[0].spec;
        assert_eq!(spec.channel, ChannelId::class_wide(Channel::ApiToEtcd));
        assert_eq!(spec.channel.node(), None);
        // And re-rendering it emits the identical historical key.
        assert_eq!(render_rows(&parsed), old_cache);
    }

    #[test]
    fn storage_rows_roundtrip_with_op_encoding() {
        // Storage rows encode the whole injection point in the point
        // column (`storage:<op>:<from>:<dur>:<replica>:<param>`); every
        // op must survive the cache round-trip and re-render
        // byte-identically — ablation replays cached specs verbatim.
        let row = |fault: Fault, op, dur_ms, param| CampaignRow {
            scenario: mutiny_scenarios::DEPLOY,
            spec: InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::Pod,
                point: InjectionPoint::Storage { op, from_off: 2_250, dur_ms, replica: 1, param },
                occurrence: 1,
            },
            fault,
            of: OrchestratorFailure::Sta,
            cf: ClientFailure::Su,
            z: 4.0,
            fired: true,
            activated: false,
            user_error: false,
            path: None,
        };
        let results = CampaignResults {
            rows: vec![
                row(mutiny_faults::ETCD_DISK_FULL, StorageOp::DiskFull, 10_000, 0),
                row(mutiny_faults::ETCD_COMPACTION_PRESSURE, StorageOp::CompactionPressure, 8_000, 0),
                row(mutiny_faults::ETCD_CORRUPT_AT_REST, StorageOp::CorruptAtRest, 0, 7),
                row(mutiny_faults::ETCD_INCONSISTENT_VIEW, StorageOp::InconsistentView, 6_000, 0),
            ],
        };
        let text = render_rows(&results);
        assert!(
            text.contains("\tstorage:disk-full:2250:10000:1:0\t"),
            "storage point encoding missing: {text}"
        );
        assert!(roundtrip_check(&results));
        let reparsed = parse_rows(&text).expect("storage rows must parse");
        assert_eq!(render_rows(&reparsed), text, "storage rows must re-render byte-identically");
    }

    #[test]
    fn config_rows_carry_a_defect_column_and_old_caches_render_unchanged() {
        // Config rows append a 13th defect-class column; it must
        // round-trip and be re-derived from the point.
        let results = CampaignResults {
            rows: vec![CampaignRow {
                scenario: mutiny_scenarios::DEPLOY,
                spec: InjectionSpec {
                    channel: Channel::UserToApi.into(),
                    kind: Kind::Deployment,
                    point: InjectionPoint::Config { defect: "selector".into(), param: 1 },
                    occurrence: 2,
                },
                fault: mutiny_faults::CFG_SELECTOR,
                of: OrchestratorFailure::MoR,
                cf: ClientFailure::Nsi,
                z: 3.5,
                fired: true,
                activated: true,
                user_error: false,
                path: None,
            }],
        };
        let text = render_rows(&results);
        let line = text.lines().next().unwrap();
        assert_eq!(line.split('\t').count(), 13, "defect column missing: {line}");
        assert!(line.ends_with("\tselector"), "defect class not last: {line}");
        assert!(roundtrip_check(&results));
        let reparsed = parse_rows(&text).expect("13-column config row must parse");
        assert_eq!(render_rows(&reparsed), text, "config rows must re-render byte-identically");

        // Every pre-config cache row has 12 columns. A representative
        // set (wire, field, temporal, node-scoped) must parse unchanged
        // and re-render byte-identically — resumed checkpoints from
        // older runs depend on it.
        let old_cache = concat!(
            "deploy\tdrop\tNo\tNSI\t0\ttrue\tfalse\tfalse\tdrop\tapiserver->etcd\tPod\t1\n",
            "deploy\tvalue-set\tSta\tSU\t12.5\ttrue\ttrue\tfalse\t",
            "field:spec.replicas:set-int:0\tapiserver->etcd\tReplicaSet\t3\n",
            "scale\tdelay\tTim\tNSI\t1.5\ttrue\tfalse\tfalse\t",
            "delay:3000\tkcm->apiserver\tLease\t2\n",
            "failover\tnode-partition\tTim\tNSI\t2\ttrue\tfalse\tfalse\t",
            "partition:2000:8000\tkubelet->apiserver@w1\tNode\t1\n",
        );
        let parsed = parse_rows(old_cache).expect("pre-config 12-column rows must parse");
        assert_eq!(parsed.len(), 4);
        assert_eq!(render_rows(&parsed), old_cache);
        // A 14-column row is garbage, not a future schema we understand.
        assert!(parse_rows("a\tb\tc\td\te\tf\tg\th\ti\tj\tk\tl\tm\tn\n").is_none());
    }

    #[test]
    fn point_serialization_is_exact() {
        use protowire::reflect::Value;
        for point in [
            InjectionPoint::Drop,
            InjectionPoint::Delay { hold_ms: 12_345 },
            InjectionPoint::Duplicate { echo_ms: 1 },
            InjectionPoint::Partition { from_off: 0, dur_ms: 4_000 },
            InjectionPoint::Crash { from_off: 2_000, dur_ms: 6_000 },
            InjectionPoint::Config { defect: "resources".into(), param: 2 },
            InjectionPoint::Config { defect: "odd%class\twith:colons".into(), param: -1 },
            InjectionPoint::ProtoByte { byte_frac: 0.123456789, bit: 7 },
            InjectionPoint::Field {
                path: "metadata.labels['k8s-app']".into(),
                mutation: FieldMutation::Set(Value::Str(String::new())),
            },
            InjectionPoint::Field {
                path: "spec.replicas".into(),
                mutation: FieldMutation::Set(Value::Int(-7)),
            },
            InjectionPoint::Field {
                path: "spec.paused".into(),
                mutation: FieldMutation::Set(Value::Bool(true)),
            },
        ] {
            assert_eq!(parse_point(&render_point(&point)), Some(point.clone()), "{point:?}");
        }
    }

    #[test]
    fn baseline_cache_roundtrips_exactly() {
        let mut b = Baseline::default();
        b.avg_response = vec![0.1 + 0.2, 123.456789012345, f64::MIN_POSITIVE, 0.0, 1e308];
        b.golden_maes = vec![1.5, 2.25];
        b.golden_worst_startup = vec![1250.0];
        b.golden_last_creation = Vec::new(); // empty series must survive
        b.expected_ready.insert("web-1".into(), 2);
        b.expected_ready.insert("web-4".into(), 3);
        b.expected_endpoints.insert("web-1-svc".into(), 2);
        b.expected_pods_created = 12;
        b.golden_pods_created_max = 14;
        b.expected_dns_ready = 1;
        b.golden_settle_ms = 53_000;
        let text = render_baseline(&b);
        let back = parse_baseline(&text).expect("cache must parse");
        // Floats must be bit-exact: z-scores are computed against these.
        assert_eq!(back.avg_response, b.avg_response);
        assert_eq!(back.golden_maes, b.golden_maes);
        assert_eq!(back.golden_worst_startup, b.golden_worst_startup);
        assert_eq!(back.golden_last_creation, b.golden_last_creation);
        assert_eq!(back.expected_ready, b.expected_ready);
        assert_eq!(back.expected_endpoints, b.expected_endpoints);
        assert_eq!(back.expected_pods_created, b.expected_pods_created);
        assert_eq!(back.golden_pods_created_max, b.golden_pods_created_max);
        assert_eq!(back.expected_dns_ready, b.expected_dns_ready);
        assert_eq!(back.golden_settle_ms, b.golden_settle_ms);
        // Corrupt or versioned-away caches are rejected, not misparsed.
        assert!(parse_baseline("mutiny-baseline-v999\n").is_none());
        assert!(parse_baseline(&text.replace("avg_response", "avg_nonsense")).is_none());
        assert!(parse_baseline(&format!("{text}trailing garbage\n")).is_none());
    }

    #[test]
    fn torn_checkpoint_tail_is_detected_and_dropped() {
        let row = CampaignRow {
            scenario: mutiny_scenarios::DEPLOY,
            spec: InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::Pod,
                point: InjectionPoint::Drop,
                occurrence: 3,
            },
            fault: mutiny_faults::DROP,
            of: OrchestratorFailure::Sta,
            cf: ClientFailure::Su,
            z: 12.5,
            fired: true,
            activated: false,
            user_error: true,
            path: None,
        };
        let results = CampaignResults { rows: vec![row.clone(), row.clone(), row] };
        let text = render_rows(&results);

        // Intact checkpoint: all rows, clean length = full length.
        let (rows, clean) = parse_checkpoint(&text).expect("intact checkpoint parses");
        assert_eq!(rows.len(), 3);
        assert_eq!(clean, text.len());

        // Kill mid-flush: the trailing row is cut mid-line. The two
        // complete rows survive and the clean length points at the last
        // newline, wherever the tear lands inside the final row.
        let second_nl = text
            .char_indices()
            .filter(|&(_, c)| c == '\n')
            .nth(1)
            .map(|(i, _)| i)
            .expect("three rows have three newlines");
        for torn_end in [second_nl + 2, text.len() - 1] {
            let torn = &text[..torn_end];
            let (rows, clean) = parse_checkpoint(torn).expect("torn tail must not poison prefix");
            assert_eq!(rows.len(), 2, "torn at byte {torn_end}");
            assert_eq!(clean, second_nl + 1);
            assert_eq!(render_rows(&rows), text[..clean], "prefix must re-render identically");
        }

        // A tear that eats the whole first line leaves nothing.
        let (rows, clean) = parse_checkpoint(&text[..10]).expect("single torn line");
        assert_eq!(rows.len(), 0);
        assert_eq!(clean, 0);

        // Corruption *inside* the newline-terminated prefix is not a torn
        // tail: the whole checkpoint is rejected as stale.
        let corrupt = text.replacen("deploy", "dEploy", 1);
        assert!(parse_checkpoint(&corrupt).is_none());
    }

    #[test]
    fn scale_defaults_are_sane() {
        assert!(scale() > 0.0 && scale() <= 1.0);
        assert!(golden_runs() >= 4);
        assert!(checkpoint_rows() >= 1);
        // The default campaign covers both registries: six scenarios and
        // seven fault families at minimum.
        assert!(scenarios().len() >= 6);
        assert!(faults().len() >= 7);
    }

    #[test]
    fn checkpoint_prefix_check_rejects_drift() {
        let planned = |sc, path: &str| PlannedExperiment {
            scenario: sc,
            fault: mutiny_faults::BIT_FLIP,
            spec: InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::Pod,
                point: InjectionPoint::Field {
                    path: path.into(),
                    mutation: FieldMutation::FlipBool,
                },
                occurrence: 1,
            },
        };
        let row_of = |p: &PlannedExperiment| CampaignRow {
            scenario: p.scenario,
            spec: p.spec.clone(),
            fault: p.fault,
            of: OrchestratorFailure::No,
            cf: ClientFailure::Nsi,
            z: 0.0,
            fired: true,
            activated: false,
            user_error: false,
            path: None,
        };
        let plan = vec![
            planned(mutiny_scenarios::DEPLOY, "spec.paused"),
            planned(mutiny_scenarios::NODE_DRAIN, "spec.paused"),
        ];
        let good = CampaignResults { rows: vec![row_of(&plan[0])] };
        assert!(rows_are_plan_prefix(&good, &plan));
        let reordered = CampaignResults { rows: vec![row_of(&plan[1])] };
        assert!(!rows_are_plan_prefix(&reordered, &plan));
        let too_long = CampaignResults {
            rows: vec![row_of(&plan[0]), row_of(&plan[1]), row_of(&plan[0])],
        };
        assert!(!rows_are_plan_prefix(&too_long, &plan));
    }
}
