//! Regenerates Table V: client-level failure statistics per workload ×
//! injection type (paper reference: NSI 89.2%, HRT 8.4%, IA 0.9%, SU 1.4%).
fn main() {
    let results = mutiny_bench::campaign();
    println!("{}", mutiny_core::tables::table5(&results).render());
}
