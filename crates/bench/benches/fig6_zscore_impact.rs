//! Regenerates Figure 6: client-impact z-scores per orchestrator-failure
//! category and workload.
fn main() {
    let results = mutiny_bench::campaign();
    println!("{}", mutiny_core::tables::fig6(&results).render());
}
