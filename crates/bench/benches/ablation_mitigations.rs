//! Ablation — the §VI-B mitigations against the campaign's critical
//! injections.
//!
//! Takes every experiment of the main campaign that ended in Stall,
//! Outage, or an unreachable service, replays it against clusters with
//! each defense enabled (alone and combined), and prints how many
//! critical failures each defense removes. This quantifies the paper's
//! closing proposals: redundancy codes on critical fields, systematic
//! replication circuit breakers, critical-field change guards with
//! rollback, and stricter admission policies.
//!
//! Scale knobs are shared with the other benches (`MUTINY_SCALE`,
//! `MUTINY_GOLDEN_RUNS`, `MUTINY_SEED`); the replay additionally honours
//! `MUTINY_ABLATION_GOLDEN` (golden runs per arm baseline, default 16).

use k8s_cluster::{ClusterConfig, MitigationsConfig};
use mutiny_core::ablation::{
    config_replay_plan, critical_replay_plan, family_coverage, run_ablation, AblationArm,
    AblationSummary,
};

/// Replays every fired config-defect injection under the unmitigated
/// and validating-admission arms and prints per-family detection
/// coverage and false-reject rates — the close-the-loop measurement for
/// the admission-time defect families.
fn validating_coverage(results: &mutiny_core::campaign::CampaignResults, golden: usize) {
    let plan = config_replay_plan(results);
    println!(
        "\n== Validating admission — detection coverage over {} config-defect injections ==",
        plan.len()
    );
    if plan.is_empty() {
        println!("(no config-defect injections fired; include cfg-* families in MUTINY_FAULTS)");
        return;
    }
    let arms = [
        AblationArm { label: "unmitigated".into(), mitigations: MitigationsConfig::default() },
        AblationArm {
            label: "validating".into(),
            mitigations: MitigationsConfig { validating: true, ..Default::default() },
        },
    ];
    let outcomes =
        run_ablation(&ClusterConfig::default(), &plan, &arms, golden, mutiny_bench::seed());
    for cov in family_coverage(&outcomes[0].1, &outcomes[1].1) {
        println!("{cov}");
    }
    println!("\n{}", mutiny_core::tables::config_defect_table(results).render());
}

fn main() {
    let results = mutiny_bench::campaign();
    let golden = std::env::var("MUTINY_ABLATION_GOLDEN")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16);

    validating_coverage(&results, golden);

    let plan = critical_replay_plan(&results);
    println!(
        "\n== Ablation — §VI-B mitigations vs the campaign's {} critical injections ==",
        plan.len()
    );
    if plan.is_empty() {
        println!("(campaign produced no critical failures at this scale; raise MUTINY_SCALE)");
        return;
    }

    let arms = AblationArm::standard();
    let t = std::time::Instant::now();
    let outcomes = run_ablation(&ClusterConfig::default(), &plan, &arms, golden, mutiny_bench::seed());
    eprintln!("[mutiny-bench] ablation finished in {:?}", t.elapsed());

    println!("\n{:<12} {:>6} {:>5} {:>5} {:>5} {:>9} {:>7}", "arm", "n", "Sta", "Out", "SU", "critical", "rate");
    println!("{}", "-".repeat(56));
    let mut baseline_rate = None;
    for (arm, res) in &outcomes {
        let s = AblationSummary::of(&arm.label, res);
        if arm.label == "unmitigated" {
            baseline_rate = Some(s.critical_rate());
        }
        println!(
            "{:<12} {:>6} {:>5} {:>5} {:>5} {:>9} {:>6.1}%",
            s.label,
            s.total,
            s.sta,
            s.out,
            s.su,
            s.critical,
            100.0 * s.critical_rate()
        );
    }

    if let Some(base) = baseline_rate {
        println!();
        for (arm, res) in &outcomes {
            if arm.label == "unmitigated" {
                continue;
            }
            let s = AblationSummary::of(&arm.label, res);
            let removed = if base > 0.0 { 100.0 * (1.0 - s.critical_rate() / base) } else { 0.0 };
            println!("{:<12} removes {removed:>5.1}% of critical failures", arm.label);
        }
    }
}
