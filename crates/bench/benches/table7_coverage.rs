//! Regenerates Table VII: which real-world error/failure subcategories
//! Mutiny's injections can replicate (§VI-A).
fn main() {
    println!("{}", mutiny_core::coverage::table7().render());
    let ((er, et), (fr, ft)) = mutiny_core::coverage::coverage_summary();
    println!("coverage: errors {er}/{et}, failures {fr}/{ft}");
}
