//! Regenerates the critical-field analysis (§V-C2 / finding F2): the
//! fields whose injections caused Sta, Out, or SU, grouped by category.
fn main() {
    let results = mutiny_bench::campaign();
    println!("{}", mutiny_core::tables::critical_field_table(&results).render());
}
