//! Regenerates Table IV: orchestrator-level failure statistics per
//! workload × injection type (paper reference: No 67.8%, Tim 1.2%,
//! LeR 9.4%, MoR 14.8%, Net 3.6%, Sta 2.8%, Out 0.4%).
fn main() {
    let results = mutiny_bench::campaign();
    println!("{}", mutiny_core::tables::table4(&results).render());
    println!("{}", mutiny_core::tables::summary_counts(&results));
}
