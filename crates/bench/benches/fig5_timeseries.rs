//! Regenerates Figure 5: a golden-run response-time series next to an
//! injected run with a high MAE z-score. The injected run replays the
//! campaign experiment with the largest observed client z-score, so the
//! right panel always shows a genuinely impacted series.
use k8s_cluster::ClusterConfig;
use mutiny_core::campaign::{run_experiment_with_baseline, ExperimentConfig};

fn sparkline(series: &[f64]) -> String {
    const BARS: [char; 8] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇'];
    let max = simkit::stats::max(series).max(1.0);
    series
        .chunks(10)
        .map(|c| {
            let avg = c.iter().sum::<f64>() / c.len() as f64;
            BARS[((avg / max) * 7.0).round() as usize]
        })
        .collect()
}

fn main() {
    // The campaign's worst client impact (paper: z ≈ 11 for its example).
    let results = mutiny_bench::campaign();
    let worst = results
        .rows
        .iter()
        .max_by(|a, b| a.z.total_cmp(&b.z))
        .expect("campaign is nonempty");

    let cluster = ClusterConfig::default();
    let scenario = worst.scenario;
    let baseline = mutiny_core::golden::build_baseline(
        &cluster,
        scenario,
        mutiny_bench::golden_runs().min(40),
        mutiny_bench::seed(),
    );

    // Left panel: a golden run.
    let golden_cfg = ExperimentConfig::golden(scenario, 777);
    let golden = run_experiment_with_baseline(&golden_cfg, &baseline);

    // Right panel: the worst campaign experiment replayed.
    let injected_cfg = ExperimentConfig::injected(scenario, 778, worst.spec.clone());
    let injected = run_experiment_with_baseline(&injected_cfg, &baseline);

    println!("== Figure 5 — golden vs injected response-time series ==");
    println!(
        "worst campaign experiment: {} {:?} on {} (campaign z = {:.1})",
        scenario.name(),
        worst.fault,
        worst.path.as_deref().unwrap_or("<message>"),
        worst.z
    );
    println!("baseline avg series (one char = 10 requests): {}", sparkline(&baseline.avg_response));
    println!("golden run   z = {:>6.1}  (of={}, cf={})", golden.z_latency, golden.orchestrator_failure, golden.client_failure);
    println!("injected run z = {:>6.1}  (of={}, cf={})", injected.z_latency, injected.orchestrator_failure, injected.client_failure);
}
