//! Criterion micro-benchmarks of the substrates: wire codec, store, and a
//! full golden experiment (the unit of campaign cost).
use criterion::{criterion_group, criterion_main, Criterion};
use k8s_cluster::ClusterConfig;
use protowire::Message;
use std::hint::black_box;

fn sample_pod() -> k8s_model::Pod {
    let mut p = k8s_model::Pod::default();
    p.metadata = k8s_model::ObjectMeta::named("default", "web-1-abcde");
    p.metadata.labels.insert("app".into(), "web-1".into());
    p.spec.node_name = "w3".into();
    p.spec.containers.push(k8s_model::Container {
        name: "web".into(),
        image: "registry.local/web:1.0".into(),
        command: vec!["serve".into()],
        cpu_milli: 500,
        memory_mb: 256,
        port: 8080,
        ..Default::default()
    });
    p.status.phase = "Running".into();
    p.status.pod_ip = "10.244.3.7".into();
    p.status.ready = true;
    p
}

fn wire(c: &mut Criterion) {
    let pod = sample_pod();
    let bytes = pod.encode();
    c.bench_function("protowire/encode_pod", |b| b.iter(|| black_box(&pod).encode()));
    c.bench_function("protowire/decode_pod", |b| {
        b.iter(|| k8s_model::Pod::decode(black_box(&bytes)).unwrap())
    });
}

fn store(c: &mut Criterion) {
    let bytes = sample_pod().encode();
    c.bench_function("etcd/put_get", |b| {
        let mut etcd = etcd_sim::Etcd::new(1, 1 << 30);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("/registry/pods/default/p{}", i % 512);
            etcd.put(&key, bytes.clone()).unwrap();
            black_box(etcd.get(&key));
        })
    });
    c.bench_function("etcd/quorum3_get", |b| {
        let mut etcd = etcd_sim::Etcd::new(3, 1 << 30);
        etcd.put("/k", bytes.clone()).unwrap();
        b.iter(|| black_box(etcd.get("/k")))
    });
}

fn experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("golden_deploy_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(mutiny_core::golden::run_golden(
                &ClusterConfig { seed, ..Default::default() },
                mutiny_scenarios::DEPLOY,
                seed,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, wire, store, experiment);
criterion_main!(benches);
