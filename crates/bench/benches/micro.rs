//! Criterion micro-benchmarks of the substrates: wire codec, store, and a
//! full golden experiment (the unit of campaign cost).
use criterion::{criterion_group, criterion_main, Criterion};
use k8s_cluster::ClusterConfig;
use protowire::Message;
use std::hint::black_box;

fn sample_pod() -> k8s_model::Pod {
    let mut p = k8s_model::Pod::default();
    p.metadata = k8s_model::ObjectMeta::named("default", "web-1-abcde");
    p.metadata.labels.insert("app".into(), "web-1".into());
    p.spec.node_name = "w3".into();
    p.spec.containers.push(k8s_model::Container {
        name: "web".into(),
        image: "registry.local/web:1.0".into(),
        command: vec!["serve".into()],
        cpu_milli: 500,
        memory_mb: 256,
        port: 8080,
        ..Default::default()
    });
    p.status.phase = "Running".into();
    p.status.pod_ip = "10.244.3.7".into();
    p.status.ready = true;
    p
}

fn wire(c: &mut Criterion) {
    let pod = sample_pod();
    let bytes = pod.encode();
    c.bench_function("protowire/encode_pod", |b| b.iter(|| black_box(&pod).encode()));
    // The store-commit encode shape: staged in pooled scratch, one
    // exactly-sized `Arc<[u8]>` allocation, no `Vec` on the way.
    c.bench_function("protowire/encode_pod_shared", |b| {
        b.iter(|| protowire::Message::encode_shared(black_box(&pod)))
    });
    c.bench_function("protowire/decode_pod", |b| {
        b.iter(|| k8s_model::Pod::decode(black_box(&bytes)).unwrap())
    });
}

fn store(c: &mut Criterion) {
    let bytes = sample_pod().encode();
    c.bench_function("etcd/put_get", |b| {
        let mut etcd = etcd_sim::Etcd::new(1, 1 << 30);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = format!("/registry/pods/default/p{}", i % 512);
            etcd.put(&key, bytes.clone()).unwrap();
            black_box(etcd.get(&key));
        })
    });
    c.bench_function("etcd/quorum3_get", |b| {
        let mut etcd = etcd_sim::Etcd::new(3, 1 << 30);
        etcd.put("/k", bytes.clone()).unwrap();
        b.iter(|| black_box(etcd.get("/k")))
    });
}

fn apiserver_write_path(c: &mut Criterion) {
    // The end-to-end write hot path this PR targets: admit → encode
    // (pooled scratch → shared Arc) → store commit (refcount moves) →
    // watch-cache sync (decode-cache hit vs full re-decode). The A/B pair
    // quantifies what the revision-keyed decode cache saves per update.
    use k8s_model::{Channel, Object};
    use std::cell::RefCell;
    use std::rc::Rc;
    fn api() -> k8s_apiserver::ApiServer {
        k8s_apiserver::ApiServer::new(
            etcd_sim::Etcd::new(1, 1 << 30),
            Rc::new(RefCell::new(k8s_model::NoopInterceptor)),
            Rc::new(RefCell::new(simkit::Trace::new(64))),
        )
    }
    for (name, cache_on) in
        [("apiserver/update_sync_decode_cache", true), ("apiserver/update_sync_full_decode", false)]
    {
        c.bench_function(name, |b| {
            let mut a = api();
            a.set_decode_cache(cache_on);
            a.create(Channel::UserToApi, Object::Pod(sample_pod())).unwrap();
            let mut pod = sample_pod();
            pod.metadata.resource_version = 0; // always write the latest
            let mut i = 0u32;
            b.iter(|| {
                i = i.wrapping_add(1);
                pod.status.restart_count = i64::from(i % 7);
                let stored =
                    a.update(Channel::KubeletToApi, Object::Pod(pod.clone())).unwrap();
                black_box(stored);
            })
        });
    }
}

fn experiment(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiment");
    group.sample_size(10);
    group.bench_function("golden_deploy_run", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(mutiny_core::golden::run_golden(
                &ClusterConfig { seed, ..Default::default() },
                mutiny_scenarios::DEPLOY,
                seed,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, wire, store, apiserver_write_path, experiment);
criterion_main!(benches);
