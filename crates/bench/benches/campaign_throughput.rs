//! Campaign-throughput bench: the perf trajectory of the experiment hot
//! path. Emits `BENCH_campaign.json` at the workspace root so successive
//! PRs can compare experiments/sec, per-experiment latency percentiles,
//! and the work-stealing-vs-static-chunk executor gap.
//!
//! Knobs (see the `mutiny_bench` crate docs): `MUTINY_SCALE` (default
//! 0.05 here — the acceptance scale), `MUTINY_GOLDEN_RUNS` (default 12
//! here; baselines are bench setup, not the measured quantity),
//! `MUTINY_SEED`, `MUTINY_THREADS`.

use k8s_cluster::ClusterConfig;
use mutiny_core::campaign::{run_campaign_static_chunks, run_campaign_with_threads};
use mutiny_core::exec;
use std::io::Write as _;
use std::time::Instant;

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn main() {
    // This bench defaults to the acceptance scale instead of the full
    // campaign, and to cheap baselines (they are setup, not measurement).
    if std::env::var("MUTINY_SCALE").is_err() {
        std::env::set_var("MUTINY_SCALE", "0.05");
    }
    if std::env::var("MUTINY_GOLDEN_RUNS").is_err() {
        std::env::set_var("MUTINY_GOLDEN_RUNS", "12");
    }
    // The perf trajectory wants the phase breakdown and detection
    // latencies unconditionally; determinism is pinned elsewhere
    // (tests/metrics_determinism.rs), so always-on is safe here.
    mutiny_telemetry::enable_in_process();

    let cluster = ClusterConfig::default();
    let seed = mutiny_bench::seed();
    let scale = mutiny_bench::scale();
    let scenario_names: Vec<&str> = mutiny_bench::scenarios().iter().map(|s| s.name()).collect();
    let fault_names: Vec<&str> = mutiny_bench::faults().iter().map(|f| f.name()).collect();
    let plan = mutiny_bench::plan();
    // Distinct per-node wires targeted by node-level families — the
    // coverage trajectory of the per-node channel axis.
    let node_channels = plan
        .iter()
        .filter_map(|p| p.spec.channel.node())
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    let threads = exec::default_threads(plan.len());
    eprintln!(
        "[campaign-throughput] {} experiments (scale {scale}, scenarios: {}, faults: {}), {threads} worker thread(s)",
        plan.len(),
        scenario_names.join(","),
        fault_names.join(",")
    );

    eprintln!(
        "[campaign-throughput] building baselines ({} golden runs)…",
        mutiny_bench::golden_runs()
    );
    let t = Instant::now();
    let baselines = mutiny_bench::baselines();
    let baseline_s = t.elapsed().as_secs_f64();

    // Measured quantity 1: campaign wall-clock on the work-stealing
    // executor (the production path). The decode-cache counters are
    // scoped to exactly this run, so the reported hit rate is the
    // campaign's, not the baseline build's.
    k8s_apiserver::reset_decode_cache_stats();
    mutiny_core::campaign::reset_fork_stats();
    let t = Instant::now();
    let stealing = run_campaign_with_threads(&cluster, &plan, &baselines, seed, threads);
    let stealing_s = t.elapsed().as_secs_f64();
    // Fork-the-world counters for exactly the stealing run: how many
    // golden prefixes were built once vs served from the snapshot cache.
    let (fork_snapshots, fork_hits) = mutiny_core::campaign::fork_stats();
    let fork_hit_rate = if fork_snapshots + fork_hits == 0 {
        0.0
    } else {
        fork_hits as f64 / (fork_snapshots + fork_hits) as f64
    };
    let (dc_hits, dc_misses) = k8s_apiserver::decode_cache_stats();
    let dc_hit_rate = if dc_hits + dc_misses == 0 {
        0.0
    } else {
        dc_hits as f64 / (dc_hits + dc_misses) as f64
    };
    // Snapshot timelines and phases now: the executor-agreement and
    // per-experiment-latency legs below re-run the same plan, which would
    // double-count every experiment in the aggregates.
    mutiny_telemetry::flush_thread();
    let detection = mutiny_telemetry::timeline::percentiles_by_family();
    let phases = mutiny_telemetry::profile::snapshot();

    // Measured quantity 2: the same plan on the seed's static-chunk
    // executor, to keep the scheduling gain visible release over release.
    // At one worker both executors are the identical serial loop, so the
    // comparison would only measure run-ordering noise (cold caches and
    // allocator state favored whichever ran second — the seed's 0.819
    // "speedup" was exactly that); see crates/bench/README.md. Skip it
    // and report the true ratio, 1.0.
    let (static_s, speedup) = if threads > 1 {
        let t = Instant::now();
        let chunked = run_campaign_static_chunks(&cluster, &plan, &baselines, seed, threads);
        let static_s = t.elapsed().as_secs_f64();
        assert_eq!(stealing.rows, chunked.rows, "executors must agree exactly");
        (static_s, static_s / stealing_s.max(1e-9))
    } else {
        eprintln!(
            "[campaign-throughput] single worker: executors are the same serial loop; \
             skipping the static-chunk comparison"
        );
        (stealing_s, 1.0)
    };

    // Measured quantity 3: per-experiment latency distribution, timed
    // serially so one experiment's time is not polluted by siblings.
    let sample_every = (plan.len() / 48).max(1);
    let sample: Vec<_> = plan.iter().cloned().step_by(sample_every).collect();
    let mut per_ms: Vec<f64> = Vec::with_capacity(sample.len());
    for planned in &sample {
        let t = Instant::now();
        let one = [planned.clone()];
        let _ = run_campaign_with_threads(&cluster, &one, &baselines, seed, 1);
        per_ms.push(t.elapsed().as_secs_f64() * 1e3);
    }
    per_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));

    let experiments_per_sec = plan.len() as f64 / stealing_s.max(1e-9);
    // The active storage engine and per-family storage-experiment counts:
    // the trajectory of the storage fault dimension, and which backend
    // this perf point was measured on.
    let storage_backend = match cluster.storage {
        etcd_sim::StorageKind::Mem => "mem",
        etcd_sim::StorageKind::Log => "log",
    };
    let storage_counts_json = {
        let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        for p in plan.iter().filter(|p| p.fault.name().starts_with("etcd-")) {
            *counts.entry(p.fault.name()).or_default() += 1;
        }
        let rows: Vec<String> = counts
            .iter()
            .map(|(name, n)| format!("    \"{name}\": {n}"))
            .collect();
        if rows.is_empty() {
            "{}".to_string()
        } else {
            format!("{{\n{}\n  }}", rows.join(",\n"))
        }
    };
    let trace_scenarios = scenario_names
        .iter()
        .filter(|n| n.starts_with("trace-"))
        .count();
    let generated_scenarios = scenario_names
        .iter()
        .filter(|n| n.starts_with("gen-"))
        .count();
    // Campaign phase breakdown (where wall-clock goes) and per-family
    // detection latency (how fast faults surface in monitoring), both
    // from the stealing run snapshotted above.
    let phases_json = {
        use mutiny_telemetry::profile::ALL;
        let per_phase: Vec<String> = ALL
            .iter()
            .map(|p| format!("    \"{}_s\": {:.3}", p.label(), phases.of(*p)))
            .collect();
        format!(
            "{{\n{},\n    \"golden_prefix_share\": {:.3}\n  }}",
            per_phase.join(",\n"),
            phases.golden_prefix_share()
        )
    };
    let detection_json = if detection.is_empty() {
        "[]".to_string()
    } else {
        let rows: Vec<String> = detection
            .iter()
            .map(|f| {
                format!(
                    "    {{ \"family\": \"{}\", \"experiments\": {}, \"detected\": {}, \"p50_ms\": {:.1}, \"p95_ms\": {:.1} }}",
                    f.family, f.experiments, f.detected, f.p50_ms, f.p95_ms
                )
            })
            .collect();
        format!("[\n{}\n  ]", rows.join(",\n"))
    };
    let json = format!(
        "{{\n  \"bench\": \"campaign_throughput\",\n  \"experiments\": {},\n  \"scale\": {scale},\n  \"scenarios\": {},\n  \"scenario_names\": \"{}\",\n  \"trace_scenarios\": {trace_scenarios},\n  \"generated_scenarios\": {generated_scenarios},\n  \"faults\": {},\n  \"fault_names\": \"{}\",\n  \"node_channels\": {node_channels},\n  \"storage_backend\": \"{storage_backend}\",\n  \"storage_experiments\": {storage_counts_json},\n  \"threads\": {threads},\n  \"golden_runs\": {},\n  \"baseline_build_s\": {:.3},\n  \"campaign_wall_s\": {:.3},\n  \"static_chunk_wall_s\": {:.3},\n  \"experiments_per_sec\": {:.3},\n  \"per_experiment_p50_ms\": {:.3},\n  \"per_experiment_p95_ms\": {:.3},\n  \"speedup_vs_static_chunk\": {:.3},\n  \"decode_cache_hits\": {dc_hits},\n  \"decode_cache_misses\": {dc_misses},\n  \"decode_cache_hit_rate\": {:.3},\n  \"fork_snapshots\": {fork_snapshots},\n  \"fork_hit_rate\": {fork_hit_rate:.3},\n  \"phases\": {phases_json},\n  \"detection_latency\": {detection_json},\n  \"rows_identical_across_executors\": true\n}}\n",
        plan.len(),
        scenario_names.len(),
        scenario_names.join(","),
        fault_names.len(),
        fault_names.join(","),
        mutiny_bench::golden_runs(),
        baseline_s,
        stealing_s,
        static_s,
        experiments_per_sec,
        percentile(&per_ms, 0.50),
        percentile(&per_ms, 0.95),
        speedup,
        dc_hit_rate,
    );

    let out_path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_campaign.json");
    let mut f = std::fs::File::create(&out_path).expect("create BENCH_campaign.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_campaign.json");
    println!("{json}");
    eprintln!("[campaign-throughput] wrote {}", out_path.display());

    // This bench drives the executors directly rather than through
    // `mutiny_bench::campaign`, so honor MUTINY_TRACE_EXPORT and
    // MUTINY_METRICS explicitly.
    mutiny_bench::export_traces_if_requested();
    mutiny_telemetry::export::export_if_requested();
}
