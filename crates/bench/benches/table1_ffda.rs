//! Regenerates Table I: the fault/error/failure taxonomy with real-world
//! incident counts from the FFDA dataset (§III).
fn main() {
    let (faults, errors, failures) = mutiny_core::ffda::table1();
    println!("{}", faults.render());
    println!("{}", errors.render());
    println!("{}", failures.render());
    let data = mutiny_core::ffda::incidents();
    println!(
        "81 incidents | Outages: {} | Mutiny-replicable: {}/81",
        mutiny_core::ffda::count(&data, |i| i.failure == mutiny_core::ffda::FailureCat::Outage),
        mutiny_core::ffda::count(&data, |i| i.mutiny_replicable),
    );
}
