//! Regenerates Table VI: the propagation study (§V-C4). Bit-flips are
//! injected on the Kcm→Api, Scheduler→Api and Kubelet→Api channels; we
//! report how many corrupted values reached etcd (Prop) and how many
//! experiments logged an apiserver error (Err.).
use k8s_cluster::ClusterConfig;
use mutiny_core::campaign::record_fields;
use mutiny_core::propagation::{channels_for, expand_per_node, propagation_plan, run_propagation};

fn main() {
    let cluster = ClusterConfig::default();
    let mut cells = Vec::new();
    for sc in mutiny_bench::scenarios() {
        // Scenario-aware channel sets: node-drain (like failover) gets a
        // dedicated Kubelet→Api cell for its eviction-window traffic,
        // controller-only scenarios skip the kubelet channel.
        let channels = channels_for(sc);
        let traffic = record_fields(&cluster, sc, channels.clone(), mutiny_bench::seed());
        // Classes whose recorded traffic carries node identity fan out
        // into one Table VI cell per node wire (kubelet->apiserver@w1,
        // @w2, …); controller channels stay one class-wide cell.
        for wire in expand_per_node(&traffic.fields, &channels) {
            let mut specs = propagation_plan(&traffic.fields, wire);
            // Scale with the campaign knob; the paper runs ~40-470 per cell.
            let keep = ((specs.len() as f64) * mutiny_bench::scale()).ceil() as usize;
            specs.truncate(keep.max(1));
            let cell = run_propagation(&cluster, sc, &specs, mutiny_bench::seed());
            cells.push((mutiny_faults::BIT_FLIP, wire, sc, cell));
        }
    }
    println!("{}", mutiny_core::tables::table6(&cells).render());
}
