//! Ablation — Wrong Autoscale Trigger (Table I(a)): how far a single
//! corrupted load metric drives the autoscaler, with and without the
//! replica-ceiling admission policy.
//!
//! Sweeps the corrupted metric value published for the client's service
//! and reports the replica extremes the HorizontalPodAutoscaler reached
//! and the client impact, mirroring the paper's observation that
//! autoscaling on misleading information both over- and under-provisions
//! services.

use k8s_cluster::{ClusterConfig, MitigationsConfig, World};
use mutiny_scenarios::DEPLOY;
use k8s_model::{Channel, HorizontalPodAutoscaler, Kind, Object};
use mutiny_core::injector::{FieldMutation, InjectionPoint, InjectionSpec, Mutiny};
use protowire::reflect::Value;
use std::cell::RefCell;
use std::rc::Rc;

fn run_case(metric: Option<&str>, policies: bool, seed: u64) -> (i64, i64, usize) {
    let mut cfg = ClusterConfig { seed, ..ClusterConfig::default() };
    cfg.net.publish_metrics = true;
    cfg.mitigations = MitigationsConfig { policies, ..Default::default() };
    let mutiny = Rc::new(RefCell::new(match metric {
        Some(v) => Mutiny::armed_from(
            InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::ConfigMap,
                point: InjectionPoint::Field {
                    path: "data['default/web-1-svc']".into(),
                    mutation: FieldMutation::Set(Value::Str(v.into())),
                },
                occurrence: 1,
            },
            k8s_cluster::WORKLOAD_START_MS,
        ),
        None => Mutiny::disarmed(),
    }));
    let handle: k8s_apiserver::InterceptorHandle = mutiny;
    let mut world = World::new(cfg, handle);
    world.prepare(DEPLOY.preinstalled_apps());
    let mut hpa = HorizontalPodAutoscaler::default();
    hpa.metadata = k8s_model::ObjectMeta::named("default", "web-1-hpa");
    hpa.spec.scale_target = "web-1".into();
    hpa.spec.min_replicas = 2;
    hpa.spec.max_replicas = 16;
    hpa.spec.target_load = 5;
    world
        .api
        .create(Channel::UserToApi, Object::HorizontalPodAutoscaler(hpa))
        .expect("create hpa");
    world.schedule_ops(DEPLOY.ops());

    let (mut lo, mut hi) = (i64::MAX, i64::MIN);
    while world.now() < world.horizon() {
        let next = (world.now() + 500).min(world.horizon());
        world.run_until(next);
        if world.now() > world.t0() {
            if let Some(Object::Deployment(d)) =
                world.api.get(Kind::Deployment, "default", "web-1").as_deref()
            {
                lo = lo.min(d.spec.replicas);
                hi = hi.max(d.spec.replicas);
            }
        }
    }
    (lo, hi, world.stats.client_failures())
}

fn main() {
    println!("== Ablation — Wrong Autoscale Trigger (corrupted load metric) ==");
    println!("target: 5 rps/replica, true load 20 rps → correct scale is 4\n");
    println!(
        "{:<18} {:>8} {:>8} {:>12}",
        "published metric", "min", "max", "client fails"
    );
    println!("{}", "-".repeat(50));
    for (label, metric) in [
        ("(uncorrupted)", None),
        ("0", Some("0")),
        ("3", Some("3")),
        ("200", Some("200")),
        ("999", Some("999")),
    ] {
        let (lo, hi, fails) = run_case(metric, false, 71);
        println!("{label:<18} {lo:>8} {hi:>8} {fails:>12}");
    }

    println!("\n-- with the replica-ceiling policy (max 50) the HPA bound still rules;");
    println!("-- a corrupted *HPA spec* bound is what the policy intercepts:");
    for policies in [false, true] {
        let mut cfg = ClusterConfig { seed: 72, ..ClusterConfig::default() };
        cfg.net.publish_metrics = true;
        cfg.mitigations = MitigationsConfig { policies, ..Default::default() };
        let mut world =
            World::new(cfg, Rc::new(RefCell::new(k8s_model::NoopInterceptor)));
        world.prepare(DEPLOY.preinstalled_apps());
        let mut hpa = HorizontalPodAutoscaler::default();
        hpa.metadata = k8s_model::ObjectMeta::named("default", "web-1-hpa");
        hpa.spec.scale_target = "web-1".into();
        hpa.spec.min_replicas = 2;
        hpa.spec.max_replicas = 500; // a corrupted / hazardous bound
        hpa.spec.target_load = 5;
        let res = world.api.create(Channel::UserToApi, Object::HorizontalPodAutoscaler(hpa));
        println!(
            "policies {}: HPA with maxReplicas=500 => {}",
            if policies { "ON " } else { "OFF" },
            if res.is_ok() { "accepted" } else { "REJECTED" }
        );
    }
}
