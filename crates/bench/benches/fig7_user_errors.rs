//! Regenerates Figure 7: how many experiments surfaced an API error to
//! the cluster user (finding F4: mostly none).
fn main() {
    let results = mutiny_bench::campaign();
    println!("{}", mutiny_core::tables::fig7(&results).render());
    let f4 = mutiny_core::findings::finding4(&results);
    println!(
        "silent failures: {:.1}% of OF≠No experiments returned no user error (paper: >85%)",
        f4.silent_failure_share * 100.0
    );
}
