//! Ablation (§V-C1): a replicated control plane does not mask in-flight
//! injections (values are corrupted before consensus), while at-rest
//! corruption of a single replica is masked by quorum reads and the
//! apiserver cache until a restart forces a re-read.
use etcd_sim::Etcd;
use k8s_cluster::ClusterConfig;
use mutiny_scenarios::DEPLOY;
use k8s_model::{Channel, Kind};
use mutiny_core::campaign::{run_experiment_with_baseline, ExperimentConfig};
use mutiny_core::injector::{FieldMutation, InjectionPoint, InjectionSpec};
use protowire::reflect::Value;

fn main() {
    // Part 1: rerun a critical-field injection on 1- and 3-replica CPs.
    let spec = InjectionSpec {
        channel: Channel::ApiToEtcd.into(),
        kind: Kind::ReplicaSet,
        point: InjectionPoint::Field {
            path: "spec.template.metadata.labels['app']".into(),
            mutation: FieldMutation::Set(Value::Str("corrupted".into())),
        },
        occurrence: 1,
    };
    println!("== Ablation — replicated control plane vs in-flight injection ==");
    for replicas in [1usize, 3] {
        let cluster = ClusterConfig { etcd_replicas: replicas, ..Default::default() };
        let baseline = mutiny_core::golden::build_baseline(&cluster, DEPLOY, 12, 3);
        let cfg = ExperimentConfig {
            cluster: ClusterConfig { seed: 1234, ..cluster.clone() },
            scenario: DEPLOY,
            injection: Some(mutiny_core::ArmedFault::implied(spec.clone())),
        };
        let out = run_experiment_with_baseline(&cfg, &baseline);
        println!(
            "etcd replicas = {replicas}: of = {} cf = {} (replication does not mask pre-consensus faults)",
            out.orchestrator_failure, out.client_failure
        );
    }

    // Part 2: at-rest corruption is masked by quorum.
    println!("\n== Ablation — at-rest corruption vs quorum reads ==");
    let mut etcd = Etcd::new(3, 1 << 20);
    etcd.put("/registry/pods/default/p", b"healthy".to_vec()).unwrap();
    etcd.corrupt_at_rest(1, "/registry/pods/default/p", b"corrupt".to_vec());
    let quorum = etcd.get("/registry/pods/default/p").unwrap().0;
    let direct = etcd.get_unquorum(1, "/registry/pods/default/p").unwrap().0;
    println!(
        "quorum read: {:?} | direct replica read: {:?}",
        String::from_utf8_lossy(&quorum),
        String::from_utf8_lossy(&direct)
    );
    assert_eq!(&quorum[..], b"healthy");
}
