//! Prints findings F1–F4 computed from this reproduction, next to the
//! paper's reference values.
fn main() {
    let results = mutiny_bench::campaign();
    println!("{}", mutiny_core::findings::render_findings(&results));
}
