//! Regenerates Table III: the OF → CF propagation matrix per workload.
fn main() {
    let results = mutiny_bench::campaign();
    println!("{}", mutiny_core::tables::table2().render());
    println!("{}", mutiny_core::tables::table3(&results).render());
}
