//! Ablations of the resiliency strategies DESIGN.md calls out:
//! apiserver validation on/off (does the selector↔template check stop
//! infinite spawn on the user path?), and full disruption mode on/off
//! (does it stop the Figure 2 eviction cascade?).
use k8s_cluster::{ClusterConfig, World};
use mutiny_scenarios::DEPLOY;
use k8s_model::{Channel, Kind, LabelSelector, Object};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // Validation ablation: a user submits a ReplicaSet whose selector does
    // not match its template (the infinite-spawn precondition).
    println!("== Ablation — apiserver validation on/off ==");
    for validation in [true, false] {
        let cfg = ClusterConfig { seed: 42, ..Default::default() };
        let mut world = World::new(cfg, Rc::new(RefCell::new(k8s_model::NoopInterceptor)));
        world.prepare(DEPLOY.preinstalled_apps());
        world.api.validation_enabled = validation;
        let mut rs = k8s_model::ReplicaSet::default();
        rs.metadata = k8s_model::ObjectMeta::named("default", "evil-rs");
        rs.spec.replicas = 2;
        rs.spec.selector = LabelSelector::eq("app", "evil");
        rs.spec.template.metadata.labels.insert("app".into(), "not-evil".into());
        rs.spec.template.spec.containers.push(k8s_model::Container {
            name: "c".into(),
            image: "registry.local/web:1.0".into(),
            command: vec!["serve".into()],
            cpu_milli: 100,
            memory_mb: 64,
            port: 8080,
            ..Default::default()
        });
        let res = world.api.create(Channel::UserToApi, Object::ReplicaSet(rs));
        world.schedule_ops(DEPLOY.ops());
        world.run_to_horizon();
        let pods = world.api.count(Kind::Pod, Some("default"));
        println!(
            "validation {}: create => {}; pods in default at end = {pods}{}",
            if validation { "ON " } else { "OFF" },
            if res.is_ok() { "accepted" } else { "REJECTED" },
            if pods > 30 { "  ← uncontrolled replication" } else { "" },
        );
    }

    // Full-disruption-mode ablation: silence every kubelet's heartbeats.
    println!("\n== Ablation — full disruption mode on/off (heartbeat blackout) ==");
    for fdm in [true, false] {
        let mut cfg = ClusterConfig { seed: 43, ..Default::default() };
        cfg.kcm.full_disruption_mode = fdm;
        cfg.kcm.node_grace_ms = 15_000; // tighter grace to fit the window
        let mut world = World::new(cfg, Rc::new(RefCell::new(k8s_model::NoopInterceptor)));
        world.prepare(DEPLOY.preinstalled_apps());
        for kl in world.kubelets.iter_mut() {
            kl.healthy = false; // the Figure 2 blackout
        }
        world.schedule_ops(DEPLOY.ops());
        world.run_to_horizon();
        println!(
            "full disruption mode {}: evictions = {} (mode ON must prevent the cascade)",
            if fdm { "ON " } else { "OFF" },
            world.kcm.metrics.pods_evicted
        );
    }
}
