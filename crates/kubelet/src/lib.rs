//! # k8s-kubelet — the simulated node agent
//!
//! One kubelet per node: registers the Node object, sends heartbeats,
//! and runs the pods bound to its node through a container lifecycle state
//! machine. The campaign-relevant behaviours:
//!
//! * **heartbeats** — `status.lastHeartbeatTime` updates every 10 s; a
//!   silenced kubelet (the Figure 2 scenario) lets the node-lifecycle
//!   controller mark the node NotReady and evict its pods;
//! * **truth reassertion** — the kubelet knows each local pod's real IP
//!   and phase and rewrites corrupted status values on its periodic sync
//!   (the paper's PodIP overwrite-recovery path);
//! * **crashloop backoff** — a failing container restarts with
//!   exponentially increasing delays (the circuit breaker of §II-D);
//! * **startup dependencies** — image pullability, volume presence, and
//!   the network agent's ConfigMap are checked before a container runs,
//!   so corrupted images/commands/volumes yield ImagePullBackOff /
//!   CrashLoopBackOff / stuck-Pending pods, as in the paper's
//!   Less-Resources patterns;
//! * **node-critical admission** — when a system-node-critical pod does
//!   not fit, the kubelet evicts lower-priority pods to make room (how
//!   uncontrolled DaemonSet replication kills application pods).

use k8s_apiserver::{ApiServer, TraceHandle};
use k8s_model::{Channel, ChannelId, Kind, Node, Object, Pod, SYSTEM_NODE_CRITICAL};
use simkit::{Rng, TraceLevel};
use std::collections::BTreeMap;

/// Image prefix the simulated registry can serve; anything else fails to
/// pull (a corrupted registry host does too).
pub const PULLABLE_IMAGE_PREFIX: &str = "registry.local/";

/// Commands the simulated images can execute (entry points). A corrupted
/// command crashes the container; an empty command uses the image's
/// default entry point.
pub const KNOWN_COMMANDS: [&str; 5] = ["serve", "netagent", "kubeproxy", "coredns", "prom"];

/// Volumes that exist on every node.
pub const KNOWN_VOLUMES: [&str; 1] = ["seed-vol"];

/// Probe windows (period × failure threshold) strictly below this flap a
/// *healthy* container: the app's warm-up and request-handling jitter
/// exceed the window, so readiness toggles even though nothing is wrong —
/// the probe-misconfiguration defect class. Sane windows (the Kubernetes
/// default is 10 s × 3) never flap.
pub const AGGRESSIVE_PROBE_WINDOW_MS: u64 = 3_000;

/// Kubelet tunables.
#[derive(Debug, Clone)]
pub struct KubeletConfig {
    /// Heartbeat cadence.
    pub heartbeat_interval_ms: u64,
    /// Periodic status re-assertion cadence.
    pub sync_interval_ms: u64,
    /// Image pull latency range.
    pub image_pull_ms: (u64, u64),
    /// Container start latency range.
    pub container_start_ms: (u64, u64),
    /// Crashloop backoff base (doubles per restart).
    pub crash_backoff_base_ms: u64,
    /// Crashloop backoff cap.
    pub crash_backoff_max_ms: u64,
}

impl Default for KubeletConfig {
    fn default() -> Self {
        KubeletConfig {
            heartbeat_interval_ms: 10_000,
            sync_interval_ms: 10_000,
            image_pull_ms: (400, 1_500),
            container_start_ms: (800, 2_500),
            crash_backoff_base_ms: 1_000,
            crash_backoff_max_ms: 60_000,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum PodState {
    /// Downloading the image.
    Pulling { until: u64 },
    /// Booting the container.
    Starting { until: u64 },
    /// Up and serving.
    Running,
    /// Waiting out a failure (reason retained).
    Waiting { reason: String, until: Option<u64> },
    /// Admission failed (node out of resources).
    Rejected,
}

#[derive(Debug, Clone)]
struct LocalPod {
    state: PodState,
    ip: String,
    restart_count: i64,
    /// True when the container is doomed to crash shortly after start
    /// (corrupted command) — evaluated at admission.
    crashes: bool,
    crash_at: Option<u64>,
    /// When the container last entered Running — replayed by the status
    /// resync in case the original Running update was lost on the wire
    /// (e.g. a node blackout window).
    started_at: Option<u64>,
    /// Aggressive readiness-probe window (ms), when the pod spec carries
    /// one below [`AGGRESSIVE_PROBE_WINDOW_MS`] — the healthy container
    /// flaps in and out of Ready on this cadence.
    flappy_window_ms: Option<u64>,
    /// Readiness last written to the store (dedupes flap updates).
    reported_ready: bool,
    cpu: i64,
    mem: i64,
    priority: i64,
}

impl LocalPod {
    /// The readiness a probe would report right now: false while crashed
    /// or backing off, toggling on the flappy-window cadence when the
    /// probe is misconfigured, true otherwise.
    fn probe_ready(&self, now: u64) -> bool {
        if self.crash_at.is_some() {
            return false;
        }
        match (self.flappy_window_ms, self.started_at) {
            (Some(w), Some(started)) if w > 0 => (now.saturating_sub(started) / w) % 2 == 0,
            _ => true,
        }
    }
}

/// Counters exposed to the failure classifiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KubeletMetrics {
    /// Containers started.
    pub started: u64,
    /// Container crashes observed.
    pub crashes: u64,
    /// Pods rejected for lack of resources.
    pub rejected: u64,
    /// Pods evicted locally to admit critical pods.
    pub critical_evictions: u64,
    /// Status writes that corrected a divergent stored status.
    pub status_corrections: u64,
    /// Readiness transitions caused by misconfigured (aggressive) probes.
    pub probe_flaps: u64,
}

/// The simulated kubelet.
#[derive(Clone)]
pub struct Kubelet {
    /// Node this kubelet manages.
    pub node_name: String,
    /// This kubelet's own wire identity
    /// (`kubelet->apiserver@<node>`) — every request it sends carries
    /// it, so node-level faults can target exactly one node.
    pub channel: ChannelId,
    node_index: u32,
    cpu_capacity: i64,
    mem_capacity: i64,
    cursor: u64,
    cfg: KubeletConfig,
    pods: BTreeMap<String, LocalPod>,
    next_heartbeat: u64,
    next_sync: u64,
    /// Heartbeat/report switch: scenario hooks silence the kubelet to
    /// model the Figure 2 heartbeat blackout.
    pub healthy: bool,
    registered: bool,
    ip_counter: u32,
    /// Metrics exposed to the classifiers.
    pub metrics: KubeletMetrics,
    trace: TraceHandle,
    rng: Rng,
}

impl std::fmt::Debug for Kubelet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kubelet")
            .field("node", &self.node_name)
            .field("pods", &self.pods.len())
            .field("healthy", &self.healthy)
            .finish()
    }
}

impl Kubelet {
    /// Creates a kubelet for `node_name` with the given capacity.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node_name: &str,
        node_index: u32,
        cpu_milli: i64,
        memory_mb: i64,
        cfg: KubeletConfig,
        api: &ApiServer,
        trace: TraceHandle,
        rng: Rng,
    ) -> Kubelet {
        Kubelet {
            node_name: node_name.to_owned(),
            channel: ChannelId::node_scoped(Channel::KubeletToApi, node_name),
            node_index,
            cpu_capacity: cpu_milli,
            mem_capacity: memory_mb,
            cursor: api.watch_head(),
            cfg,
            pods: BTreeMap::new(),
            next_heartbeat: 0,
            next_sync: 0,
            healthy: true,
            registered: false,
            ip_counter: 1,
            metrics: KubeletMetrics::default(),
            trace,
            rng,
        }
    }

    /// The pod CIDR this node announces.
    pub fn pod_cidr(&self) -> String {
        format!("10.244.{}.0/24", self.node_index)
    }

    /// The node's own address.
    pub fn internal_ip(&self) -> String {
        format!("192.168.1.{}", 10 + self.node_index)
    }

    /// Number of pods currently managed.
    pub fn pod_count(&self) -> usize {
        self.pods.len()
    }

    fn log(&self, now: u64, level: TraceLevel, msg: String) {
        self.trace.borrow_mut().log(now, level, format!("kubelet/{}", self.node_name), msg);
    }

    /// Runs one kubelet step at simulated time `now`.
    /// Repoints the shared trace buffer (fork-the-world gives each forked
    /// run its own trace so siblings never interleave log lines).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    pub fn step(&mut self, api: &mut ApiServer, now: u64) {
        // Register (or re-register) the Node object.
        if api.get(Kind::Node, "", &self.node_name).is_none() {
            let mut node = Node::worker(&self.node_name, self.cpu_capacity, self.mem_capacity);
            node.spec.pod_cidr = self.pod_cidr();
            node.status.internal_ip = self.internal_ip();
            node.status.last_heartbeat = now as i64;
            if api.create(self.channel, Object::Node(node)).is_ok() {
                self.registered = true;
                self.log(now, TraceLevel::Info, "node registered".to_owned());
            }
        }

        // Heartbeat.
        if self.healthy && now >= self.next_heartbeat {
            self.next_heartbeat = now + self.cfg.heartbeat_interval_ms;
            if let Some(Object::Node(node)) = api.get(Kind::Node, "", &self.node_name).as_deref() {
                let mut node = node.clone();
                node.status.last_heartbeat = now as i64;
                node.status.ready = true;
                mutiny_telemetry::counter_add("kubelet.heartbeats", 1);
                let _ = api.update(self.channel, Object::Node(node));
            }
        }

        // Watch events: pods bound to this node appear and disappear.
        let (events, next) = api.poll_events(self.cursor);
        self.cursor = next;
        for ev in events {
            if ev.kind != Kind::Pod {
                continue;
            }
            match ev.object.as_deref() {
                Some(Object::Pod(pod)) => {
                    if pod.spec.node_name == self.node_name && !pod.metadata.is_terminating() {
                        if !self.pods.contains_key(&*ev.key) {
                            self.admit(api, now, &ev.key, pod);
                        }
                    } else if self.pods.contains_key(&*ev.key)
                        && pod.spec.node_name != self.node_name
                    {
                        // Rebound elsewhere (corruption): stop the local copy.
                        self.pods.remove(&*ev.key);
                    }
                }
                Some(_) => {}
                None => {
                    self.pods.remove(&*ev.key);
                }
            }
        }

        // Advance local lifecycles.
        let keys: Vec<String> = self.pods.keys().cloned().collect();
        for key in keys {
            self.advance(api, now, &key);
        }

        // Periodic status re-assertion (overwrite-recovery path).
        if self.healthy && now >= self.next_sync {
            self.next_sync = now + self.cfg.sync_interval_ms;
            self.resync_statuses(api, now);
        }
    }

    fn admit(&mut self, api: &mut ApiServer, now: u64, key: &str, pod: &Pod) {
        let cpu = pod.cpu_request();
        let mem = pod.memory_request();
        let (cpu_used, mem_used) = self.local_usage();
        let fits = cpu_used + cpu <= self.cpu_capacity && mem_used + mem <= self.mem_capacity;

        if !fits && pod.spec.priority >= SYSTEM_NODE_CRITICAL {
            // Node-critical admission: evict lower-priority pods.
            self.evict_for_critical(api, now, cpu, mem, pod.spec.priority);
        }
        let (cpu_used, mem_used) = self.local_usage();
        if cpu_used + cpu > self.cpu_capacity || mem_used + mem > self.mem_capacity {
            self.metrics.rejected = self.metrics.rejected.saturating_add(1);
            self.log(now, TraceLevel::Warn, format!("rejecting pod {key}: out of resources"));
            let mut rejected = pod.clone();
            rejected.status.phase = "Failed".into();
            rejected.status.reason = "OutOfcpu".into();
            rejected.status.ready = false;
            let _ = api.update(self.channel, Object::Pod(rejected));
            self.pods.insert(
                key.to_owned(),
                LocalPod {
                    state: PodState::Rejected,
                    ip: String::new(),
                    restart_count: 0,
                    crashes: false,
                    crash_at: None,
                    started_at: None,
                    flappy_window_ms: None,
                    reported_ready: false,
                    cpu: 0,
                    mem: 0,
                    priority: pod.spec.priority,
                },
            );
            return;
        }

        // Startup dependency checks.
        let image_ok = pod
            .spec
            .containers
            .iter()
            .all(|c| c.image.starts_with(PULLABLE_IMAGE_PREFIX));
        let volume_ok =
            pod.spec.volume.is_empty() || KNOWN_VOLUMES.contains(&pod.spec.volume.as_str());
        let command_crashes = pod.spec.containers.iter().any(|c| {
            !c.command.is_empty() && !KNOWN_COMMANDS.contains(&c.command[0].as_str())
        }) || self.netagent_config_broken(api, pod);
        // A limit below the request throttles the container under its own
        // floor: it starts, then crash-loops — the cfg-resources defect.
        let doomed = command_crashes || pod.request_exceeds_limit();
        let flappy_window_ms =
            pod.probe_window_ms().filter(|&w| w < AGGRESSIVE_PROBE_WINDOW_MS);

        let mut local = LocalPod {
            state: PodState::Pulling { until: now },
            ip: String::new(),
            restart_count: pod.status.restart_count,
            crashes: doomed,
            crash_at: None,
            started_at: None,
            flappy_window_ms,
            reported_ready: false,
            cpu,
            mem,
            priority: pod.spec.priority,
        };

        if !image_ok {
            self.log(now, TraceLevel::Warn, format!("pod {key}: image pull error"));
            local.state = PodState::Waiting { reason: "ImagePullBackOff".into(), until: None };
            self.write_waiting_status(api, pod, "ImagePullBackOff");
        } else if !volume_ok {
            self.log(now, TraceLevel::Warn, format!("pod {key}: volume not found"));
            local.state = PodState::Waiting { reason: "VolumeNotFound".into(), until: None };
            self.write_waiting_status(api, pod, "ContainerCreating");
        } else {
            let (lo, hi) = self.cfg.image_pull_ms;
            local.state = PodState::Pulling { until: now + self.rng.range(lo, hi) };
        }
        self.pods.insert(key.to_owned(), local);
    }

    /// The network agent reads its ConfigMap at startup; a corrupted
    /// backend value crashes it (cluster-wide network failure material).
    fn netagent_config_broken(&self, api: &mut ApiServer, pod: &Pod) -> bool {
        let is_netagent =
            pod.spec.containers.iter().any(|c| c.command.first().map(String::as_str) == Some("netagent"));
        if !is_netagent {
            return false;
        }
        match api.get(Kind::ConfigMap, "kube-system", "net-conf").as_deref() {
            Some(Object::ConfigMap(cm)) => {
                !matches!(cm.data.get("backend").map(String::as_str), Some("vxlan") | Some("host-gw"))
            }
            _ => true,
        }
    }

    fn evict_for_critical(
        &mut self,
        api: &mut ApiServer,
        now: u64,
        need_cpu: i64,
        need_mem: i64,
        priority: i64,
    ) {
        let mut victims: Vec<(String, i64, i64, i64)> = self
            .pods
            .iter()
            .filter(|(_, lp)| lp.priority < priority && !matches!(lp.state, PodState::Rejected))
            .map(|(k, lp)| (k.clone(), lp.priority, lp.cpu, lp.mem))
            .collect();
        victims.sort_by_key(|(_, p, _, _)| *p);
        let (mut cpu_used, mut mem_used) = self.local_usage();
        for (key, _, cpu, mem) in victims {
            if cpu_used + need_cpu <= self.cpu_capacity && mem_used + need_mem <= self.mem_capacity
            {
                break;
            }
            self.log(now, TraceLevel::Warn, format!("evicting {key} for critical pod"));
            if let Some((ns, name)) = split_pod_key(&key) {
                let _ = api.delete(self.channel, Kind::Pod, &ns, &name);
            }
            self.pods.remove(&key);
            self.metrics.critical_evictions = self.metrics.critical_evictions.saturating_add(1);
            cpu_used -= cpu;
            mem_used -= mem;
        }
    }

    fn local_usage(&self) -> (i64, i64) {
        let cpu = self.pods.values().filter(|p| !matches!(p.state, PodState::Rejected)).map(|p| p.cpu).sum();
        let mem = self.pods.values().filter(|p| !matches!(p.state, PodState::Rejected)).map(|p| p.mem).sum();
        (cpu, mem)
    }

    fn advance(&mut self, api: &mut ApiServer, now: u64, key: &str) {
        let Some(local) = self.pods.get(key).cloned() else { return };
        let Some((ns, name)) = split_pod_key(key) else { return };

        match local.state {
            PodState::Pulling { until } if now >= until => {
                let (lo, hi) = self.cfg.container_start_ms;
                let until = now + self.rng.range(lo, hi);
                if let Some(lp) = self.pods.get_mut(key) {
                    lp.state = PodState::Starting { until };
                }
            }
            PodState::Starting { until } if now >= until => {
                // Container is up: allocate the IP and report Running.
                let ip = if local.ip.is_empty() {
                    let ip = format!("10.244.{}.{}", self.node_index, self.ip_counter);
                    self.ip_counter = self.ip_counter.wrapping_add(1).max(1);
                    ip
                } else {
                    local.ip.clone()
                };
                let crash_at = local.crashes.then(|| now + 800 + self.rng.below(700));
                if let Some(lp) = self.pods.get_mut(key) {
                    lp.state = PodState::Running;
                    lp.ip = ip.clone();
                    lp.crash_at = crash_at;
                    lp.started_at = Some(now);
                    lp.reported_ready = !local.crashes;
                }
                self.metrics.started = self.metrics.started.saturating_add(1);
                if let Some(Object::Pod(pod)) = api.get(Kind::Pod, &ns, &name).as_deref() {
                    let mut pod = pod.clone();
                    pod.status.phase = "Running".into();
                    pod.status.ready = !local.crashes;
                    pod.status.pod_ip = ip;
                    pod.status.start_time = now as i64;
                    pod.status.restart_count = local.restart_count;
                    pod.status.reason.clear();
                    let _ = api.update(self.channel, Object::Pod(pod));
                }
            }
            PodState::Running => {
                if local.crash_at.is_none() && local.flappy_window_ms.is_some() {
                    // Misconfigured probe: the healthy container toggles
                    // Ready on the (too-short) probe-window cadence.
                    let ready = local.probe_ready(now);
                    if ready != local.reported_ready {
                        self.metrics.probe_flaps = self.metrics.probe_flaps.saturating_add(1);
                        if let Some(lp) = self.pods.get_mut(key) {
                            lp.reported_ready = ready;
                        }
                        if let Some(Object::Pod(pod)) = api.get(Kind::Pod, &ns, &name).as_deref() {
                            let mut pod = pod.clone();
                            pod.status.ready = ready;
                            pod.status.reason =
                                if ready { String::new() } else { "Unhealthy".into() };
                            let _ = api.update(self.channel, Object::Pod(pod));
                        }
                    }
                }
                if let Some(crash_at) = local.crash_at {
                    if now >= crash_at {
                        // Crash: back off exponentially (circuit breaker).
                        self.metrics.crashes = self.metrics.crashes.saturating_add(1);
                        mutiny_telemetry::counter_add("kubelet.pod_restarts", 1);
                        let restarts = local.restart_count + 1;
                        let backoff = (self.cfg.crash_backoff_base_ms
                            << (restarts - 1).clamp(0, 16) as u32)
                            .min(self.cfg.crash_backoff_max_ms);
                        self.log(
                            now,
                            TraceLevel::Warn,
                            format!("pod {key} crashed (restart {restarts}); backoff {backoff} ms"),
                        );
                        if let Some(lp) = self.pods.get_mut(key) {
                            lp.state = PodState::Waiting {
                                reason: "CrashLoopBackOff".into(),
                                until: Some(now + backoff),
                            };
                            lp.restart_count = restarts;
                        }
                        if let Some(Object::Pod(pod)) = api.get(Kind::Pod, &ns, &name).as_deref() {
                            let mut pod = pod.clone();
                            pod.status.ready = false;
                            pod.status.restart_count = restarts;
                            pod.status.reason = "CrashLoopBackOff".into();
                            let _ = api.update(self.channel, Object::Pod(pod));
                        }
                    }
                }
            }
            PodState::Waiting { until: Some(until), .. } if now >= until => {
                let (lo, hi) = self.cfg.container_start_ms;
                let boot = now + self.rng.range(lo, hi);
                if let Some(lp) = self.pods.get_mut(key) {
                    lp.state = PodState::Starting { until: boot };
                }
            }
            _ => {}
        }
    }

    fn write_waiting_status(&self, api: &mut ApiServer, pod: &Pod, reason: &str) {
        let mut p = pod.clone();
        p.status.phase = "Pending".into();
        p.status.ready = false;
        p.status.reason = reason.into();
        let _ = api.update(self.channel, Object::Pod(p));
    }

    /// Re-asserts the true status of every local pod, correcting any
    /// stored value that diverged (e.g. a corrupted PodIP).
    fn resync_statuses(&mut self, api: &mut ApiServer, now: u64) {
        let entries: Vec<(String, LocalPod)> =
            self.pods.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        for (key, local) in entries {
            let Some((ns, name)) = split_pod_key(&key) else { continue };
            let Some(pod_obj) = api.get(Kind::Pod, &ns, &name) else {
                self.pods.remove(&key);
                continue;
            };
            let Object::Pod(pod) = &*pod_obj else {
                self.pods.remove(&key);
                continue;
            };
            if pod.spec.node_name != self.node_name {
                self.pods.remove(&key);
                continue;
            }
            if let PodState::Running = local.state {
                let truth_ready = local.probe_ready(now);
                let truth_started = local.started_at.map(|t| t as i64);
                let start_time_diverged =
                    truth_started.is_some_and(|t| pod.status.start_time != t);
                if pod.status.pod_ip != local.ip
                    || pod.status.phase != "Running"
                    || pod.status.ready != truth_ready
                    || start_time_diverged
                {
                    let mut fixed = pod.clone();
                    fixed.status.phase = "Running".into();
                    fixed.status.ready = truth_ready;
                    fixed.status.pod_ip = local.ip.clone();
                    fixed.status.restart_count = local.restart_count;
                    if let Some(t) = truth_started {
                        fixed.status.start_time = t;
                    }
                    if api.update(self.channel, Object::Pod(fixed)).is_ok() {
                        if let Some(lp) = self.pods.get_mut(&key) {
                            lp.reported_ready = truth_ready;
                        }
                        self.metrics.status_corrections = self.metrics.status_corrections.saturating_add(1);
                        self.log(
                            now,
                            TraceLevel::Info,
                            format!("corrected divergent status of {key}"),
                        );
                    }
                }
            }
        }
    }

    /// Restarts the kubelet after a blackout: a fresh watch cursor plus a
    /// full re-list of the pods bound to this node, the node-level
    /// counterpart of the apiserver's crash-recovery cache rebuild.
    /// Containers are not restarted — they survive a kubelet restart, as
    /// on a real node — but local pods deleted from the store while the
    /// kubelet was dark are dropped, pods bound in the meantime are
    /// admitted, and the next heartbeat/status resync fires immediately
    /// (the status replay that repairs divergence accumulated during the
    /// blackout).
    pub fn restart(&mut self, api: &mut ApiServer, now: u64) {
        self.cursor = api.watch_head();
        let mut bound: BTreeMap<String, Pod> = BTreeMap::new();
        for obj in api.list(Kind::Pod, None) {
            if let Object::Pod(pod) = &*obj {
                if pod.spec.node_name == self.node_name && !pod.metadata.is_terminating() {
                    let key = k8s_model::registry_key(
                        Kind::Pod,
                        &pod.metadata.namespace,
                        &pod.metadata.name,
                    );
                    bound.insert(key, pod.clone());
                }
            }
        }
        self.pods.retain(|key, _| bound.contains_key(key));
        for (key, pod) in &bound {
            if !self.pods.contains_key(key) {
                self.admit(api, now, key, pod);
            }
        }
        self.healthy = true;
        self.next_heartbeat = now;
        self.next_sync = now;
        self.log(now, TraceLevel::Warn, "kubelet restarted: re-listed bound pods".to_owned());
    }

    /// The true IP of a local pod, if it is running (used by the traffic
    /// engine to verify endpoint addresses point somewhere real).
    pub fn running_pod_ip(&self, key: &str) -> Option<&str> {
        match self.pods.get(key) {
            Some(LocalPod { state: PodState::Running, ip, crash_at: None, .. }) => Some(ip),
            _ => None,
        }
    }
}

fn split_pod_key(key: &str) -> Option<(String, String)> {
    let rest = key.strip_prefix("/registry/pods/")?;
    let (ns, name) = rest.split_once('/')?;
    Some((ns.to_owned(), name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcd_sim::Etcd;
    use k8s_apiserver::InterceptorHandle;
    use k8s_model::{Container, NoopInterceptor, ObjectMeta};
    use simkit::Trace;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn api() -> ApiServer {
        let interceptor: InterceptorHandle = Rc::new(RefCell::new(NoopInterceptor));
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(256)));
        ApiServer::new(Etcd::new(1, 8 << 20), interceptor, trace)
    }

    fn kubelet(api: &ApiServer) -> Kubelet {
        Kubelet::new(
            "w1",
            1,
            8000,
            4096,
            KubeletConfig::default(),
            api,
            Rc::new(RefCell::new(Trace::new(256))),
            Rng::new(7),
        )
    }

    fn bound_pod(name: &str, image: &str, command: &[&str]) -> Object {
        let mut p = Pod::default();
        p.metadata = ObjectMeta::named("default", name);
        p.spec.node_name = "w1".into();
        p.spec.containers.push(Container {
            name: "c".into(),
            image: image.into(),
            command: command.iter().map(|s| s.to_string()).collect(),
            cpu_milli: 500,
            memory_mb: 256,
            port: 8080,
            ..Default::default()
        });
        Object::Pod(p)
    }

    fn run_until(kl: &mut Kubelet, api: &mut ApiServer, from: u64, to: u64) {
        let mut t = from;
        while t <= to {
            kl.step(api, t);
            t += 200;
        }
    }

    #[test]
    fn registers_node_and_heartbeats() {
        let mut api = api();
        let mut kl = kubelet(&api);
        kl.step(&mut api, 0);
        let node = api.get(Kind::Node, "", "w1").unwrap();
        assert!(node.as_pod().is_none());
        kl.step(&mut api, 10_500);
        if let Object::Node(n) = &*api.get(Kind::Node, "", "w1").unwrap() {
            assert!(n.status.last_heartbeat >= 10_000);
            assert!(n.status.ready);
            assert_eq!(n.spec.pod_cidr, "10.244.1.0/24");
        } else {
            panic!("node missing");
        }
    }

    #[test]
    fn runs_bound_pod_to_ready_with_ip() {
        let mut api = api();
        let mut kl = kubelet(&api);
        kl.step(&mut api, 0);
        api.create(Channel::UserToApi, bound_pod("p1", "registry.local/web:1.0", &["serve"]))
            .unwrap();
        run_until(&mut kl, &mut api, 200, 6_000);
        let pod = api.get(Kind::Pod, "default", "p1").unwrap();
        let p = pod.as_pod().unwrap();
        assert_eq!(p.status.phase, "Running");
        assert!(p.status.ready);
        assert!(p.status.pod_ip.starts_with("10.244.1."));
    }

    #[test]
    fn bad_image_never_becomes_ready() {
        let mut api = api();
        let mut kl = kubelet(&api);
        kl.step(&mut api, 0);
        api.create(Channel::ApiToEtcd, bound_pod("p1", "registry.lockl/web:1.0", &["serve"]))
            .unwrap();
        run_until(&mut kl, &mut api, 200, 8_000);
        let pod = api.get(Kind::Pod, "default", "p1").unwrap();
        let p = pod.as_pod().unwrap();
        assert!(!p.status.ready);
        assert_eq!(p.status.reason, "ImagePullBackOff");
    }

    #[test]
    fn corrupted_command_crashloops_with_backoff() {
        let mut api = api();
        let mut kl = kubelet(&api);
        kl.step(&mut api, 0);
        api.create(Channel::UserToApi, bound_pod("p1", "registry.local/web:1.0", &["serwe"]))
            .unwrap();
        run_until(&mut kl, &mut api, 200, 30_000);
        let pod = api.get(Kind::Pod, "default", "p1").unwrap();
        let p = pod.as_pod().unwrap();
        assert!(p.status.restart_count >= 2, "restarts: {}", p.status.restart_count);
        assert!(!p.status.ready);
        assert!(kl.metrics.crashes >= 2);
        // Backoff must slow restarts down: crashes are far fewer than the
        // number of steps.
        assert!(kl.metrics.crashes < 10);
    }

    #[test]
    fn corrupted_pod_ip_is_overwritten_on_sync() {
        let mut api = api();
        let mut kl = kubelet(&api);
        kl.step(&mut api, 0);
        api.create(Channel::UserToApi, bound_pod("p1", "registry.local/web:1.0", &["serve"]))
            .unwrap();
        run_until(&mut kl, &mut api, 200, 6_000);
        // Corrupt the stored PodIP via the store channel.
        let mut pod = (*api.get(Kind::Pod, "default", "p1").unwrap()).clone();
        let true_ip = pod.as_pod().unwrap().status.pod_ip.clone();
        if let Object::Pod(p) = &mut pod {
            p.status.pod_ip = "10.99.99.99".into();
        }
        api.update(Channel::ApiToEtcd, pod).unwrap();
        // The periodic sync re-asserts the truth.
        run_until(&mut kl, &mut api, 6_200, 20_000);
        let pod = api.get(Kind::Pod, "default", "p1").unwrap();
        assert_eq!(pod.as_pod().unwrap().status.pod_ip, true_ip);
        assert!(kl.metrics.status_corrections >= 1);
    }

    #[test]
    fn rejects_pod_that_does_not_fit() {
        let mut api = api();
        let mut kl = kubelet(&api);
        kl.step(&mut api, 0);
        let mut big = bound_pod("big", "registry.local/web:1.0", &["serve"]);
        if let Object::Pod(p) = &mut big {
            p.spec.containers[0].cpu_milli = 9_000;
        }
        api.create(Channel::ApiToEtcd, big).unwrap();
        run_until(&mut kl, &mut api, 200, 2_000);
        let pod = api.get(Kind::Pod, "default", "big").unwrap();
        assert_eq!(pod.as_pod().unwrap().status.phase, "Failed");
        assert_eq!(kl.metrics.rejected, 1);
    }

    #[test]
    fn critical_pod_evicts_lower_priority() {
        let mut api = api();
        let mut kl = kubelet(&api);
        kl.step(&mut api, 0);
        // Fill the node with an app pod.
        let mut app = bound_pod("app", "registry.local/web:1.0", &["serve"]);
        if let Object::Pod(p) = &mut app {
            p.spec.containers[0].cpu_milli = 7_000;
        }
        api.create(Channel::UserToApi, app).unwrap();
        run_until(&mut kl, &mut api, 200, 6_000);
        assert!(api.get(Kind::Pod, "default", "app").is_some());
        // A node-critical pod arrives that does not fit.
        let mut crit = bound_pod("crit", "registry.local/netagent:1.0", &["serve"]);
        if let Object::Pod(p) = &mut crit {
            p.spec.containers[0].cpu_milli = 2_000;
            p.spec.priority = SYSTEM_NODE_CRITICAL;
        }
        api.create(Channel::ApiToEtcd, crit).unwrap();
        run_until(&mut kl, &mut api, 6_200, 12_000);
        assert!(api.get(Kind::Pod, "default", "app").is_none(), "app pod must be evicted");
        assert!(kl.metrics.critical_evictions >= 1);
        let crit = api.get(Kind::Pod, "default", "crit").unwrap();
        assert_eq!(crit.as_pod().unwrap().status.phase, "Running");
    }

    #[test]
    fn request_over_limit_crashloops() {
        // The cfg-resources defect: a valid spec whose limit sits below
        // its request starts, then crash-loops under throttling.
        let mut api = api();
        let mut kl = kubelet(&api);
        kl.step(&mut api, 0);
        let mut pod = bound_pod("p1", "registry.local/web:1.0", &["serve"]);
        if let Object::Pod(p) = &mut pod {
            p.spec.containers[0].cpu_limit_milli = 100; // below the 500m request
        }
        api.create(Channel::UserToApi, pod).unwrap();
        run_until(&mut kl, &mut api, 200, 30_000);
        let pod = api.get(Kind::Pod, "default", "p1").unwrap();
        let p = pod.as_pod().unwrap();
        assert!(!p.status.ready);
        assert!(p.status.restart_count >= 1, "restarts: {}", p.status.restart_count);
        assert!(kl.metrics.crashes >= 1);
    }

    #[test]
    fn aggressive_probe_flaps_a_healthy_pod() {
        // The cfg-probe defect: 1 s × 1 failure probing flaps a pod that
        // is actually fine; sane (default) probing never does.
        let mut api = api();
        let mut kl = kubelet(&api);
        kl.step(&mut api, 0);
        let mut pod = bound_pod("p1", "registry.local/web:1.0", &["serve"]);
        if let Object::Pod(p) = &mut pod {
            p.spec.probe_period_seconds = 1;
            p.spec.probe_failure_threshold = 1;
        }
        api.create(Channel::UserToApi, pod).unwrap();
        run_until(&mut kl, &mut api, 200, 30_000);
        assert!(kl.metrics.probe_flaps >= 4, "flaps: {}", kl.metrics.probe_flaps);
        assert_eq!(kl.metrics.crashes, 0, "flapping is not crashing");

        // A sane probe window (above the aggressive bound) never flaps.
        let mut api = tests::api();
        let mut kl = kubelet(&api);
        kl.step(&mut api, 0);
        let mut sane = bound_pod("p2", "registry.local/web:1.0", &["serve"]);
        if let Object::Pod(p) = &mut sane {
            p.spec.probe_period_seconds = 10;
            p.spec.probe_failure_threshold = 3;
        }
        api.create(Channel::UserToApi, sane).unwrap();
        run_until(&mut kl, &mut api, 200, 30_000);
        assert_eq!(kl.metrics.probe_flaps, 0, "sane probe flapped");
        let pod = api.get(Kind::Pod, "default", "p2").unwrap();
        assert!(pod.as_pod().unwrap().status.ready);
    }

    #[test]
    fn unknown_volume_blocks_startup() {
        let mut api = api();
        let mut kl = kubelet(&api);
        kl.step(&mut api, 0);
        let mut pod = bound_pod("p1", "registry.local/web:1.0", &["serve"]);
        if let Object::Pod(p) = &mut pod {
            p.spec.volume = "seed-vom".into(); // one corrupted bit
        }
        api.create(Channel::ApiToEtcd, pod).unwrap();
        run_until(&mut kl, &mut api, 200, 8_000);
        let pod = api.get(Kind::Pod, "default", "p1").unwrap();
        assert!(!pod.as_pod().unwrap().status.ready);
        assert_eq!(pod.as_pod().unwrap().status.phase, "Pending");
    }
}
