//! # k8s-scheduler — the simulated kube-scheduler
//!
//! Assigns pods to nodes based on resource requests, availability and
//! constraints (§II-C), with the mechanisms the paper's campaign exercises:
//!
//! * **filtering and scoring** — readiness, schedulability, taints and
//!   resource fit, then least-allocated scoring;
//! * **priority preemption** — a pending high-priority pod evicts
//!   lower-priority pods; combined with system-node-critical DaemonSet
//!   pods this turns uncontrolled replication into an Outage;
//! * **leader election** — one active replica; re-election after a restart
//!   costs ~20 s (§V-C1's Timing-failure example);
//! * **cache-consistency restart** — when the stored binding of a pod
//!   disagrees with the scheduler's own cache, the scheduler assumes its
//!   cache is corrupted and restarts, exactly as the paper describes for
//!   `nodeName` injections on running pods.

use k8s_apiserver::workqueue::WorkQueue;
use k8s_apiserver::{ApiServer, LeaderElector, TraceHandle};
use k8s_model::node::{TAINT_NO_EXECUTE, TAINT_NO_SCHEDULE};
use k8s_model::{Channel, Kind, Node, Object, Pod};
use simkit::TraceLevel;
use std::collections::HashMap;
use std::rc::Rc;

/// Scheduler tunables.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Maximum pods bound per step.
    pub bind_budget: usize,
    /// Process boot time after a self-restart, before rejoining election.
    pub restart_boot_ms: u64,
    /// Requeue delay for unschedulable pods.
    pub unschedulable_retry_ms: u64,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig { bind_budget: 20, restart_boot_ms: 2_000, unschedulable_retry_ms: 1_000 }
    }
}

/// Counters exposed to the failure classifiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerMetrics {
    /// Successful bindings.
    pub scheduled: u64,
    /// Pods deleted by preemption.
    pub preempted: u64,
    /// Self-restarts after cache mismatches.
    pub restarts: u64,
    /// Scheduling attempts that found no feasible node.
    pub unschedulable_rounds: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    Running,
    /// Booting after a self-restart; scheduling resumes (after
    /// re-election) once the clock passes the deadline.
    Restarting(u64),
}

/// The simulated scheduler.
#[derive(Clone)]
pub struct Scheduler {
    cursor: u64,
    elector: LeaderElector,
    /// Pending pod keys, shared with the watch cache's interned keys: the
    /// steady-state enqueue is a refcount bump, not a string copy.
    pending: WorkQueue<Rc<str>>,
    /// The scheduler's own view of bindings: pod key → node name.
    assumed: HashMap<Rc<str>, String>,
    state: State,
    cfg: SchedulerConfig,
    /// Metrics exposed to the classifiers.
    pub metrics: SchedulerMetrics,
    trace: TraceHandle,
    identity: String,
    incarnation: u32,
    needs_relist: bool,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("leader", &self.elector.is_leader())
            .field("pending", &self.pending.len())
            .field("state", &self.state)
            .finish()
    }
}

impl Scheduler {
    /// Creates a scheduler watching from the apiserver's current head.
    pub fn new(identity: &str, cfg: SchedulerConfig, api: &ApiServer, trace: TraceHandle) -> Scheduler {
        Scheduler {
            cursor: api.watch_head(),
            elector: LeaderElector::new("scheduler-leader", identity, Channel::SchedulerToApi),
            pending: WorkQueue::new()
                .with_telemetry("scheduler.queue.depth_hw", "scheduler.bind.wait_ms"),
            assumed: HashMap::new(),
            state: State::Running,
            cfg,
            metrics: SchedulerMetrics::default(),
            trace,
            identity: identity.to_owned(),
            incarnation: 0,
            needs_relist: true,
        }
    }

    /// True while this instance holds the scheduler leader lease.
    pub fn is_leader(&self) -> bool {
        self.elector.is_leader()
    }

    /// Number of pods waiting to be scheduled.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// True while the scheduler is down for a self-restart.
    pub fn is_restarting(&self) -> bool {
        matches!(self.state, State::Restarting(_))
    }

    fn log(&self, api: &ApiServer, level: TraceLevel, msg: String) {
        self.trace.borrow_mut().log(api.now(), level, "scheduler", msg);
    }

    /// Runs one scheduler step at simulated time `now`.
    /// Repoints the shared trace buffer (fork-the-world gives each forked
    /// run its own trace so siblings never interleave log lines).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    pub fn step(&mut self, api: &mut ApiServer, now: u64) {
        if let State::Restarting(until) = self.state {
            if now < until {
                return;
            }
            self.state = State::Running;
            self.needs_relist = true;
        }

        if !self.elector.step(api, now) {
            self.cursor = api.watch_head();
            self.needs_relist = true;
            return;
        }

        if self.needs_relist {
            self.relist(api, now);
            self.needs_relist = false;
        }

        // Consume watch events.
        let (events, next) = api.poll_events(self.cursor);
        self.cursor = next;
        let mut mismatch: Option<(Rc<str>, String, String)> = None;
        for ev in events {
            match (ev.kind, ev.object.as_deref()) {
                (Kind::Pod, Some(Object::Pod(pod))) => {
                    // The event key is already interned by the watch
                    // cache; keep sharing its allocation.
                    let key = ev.key.clone();
                    if pod.metadata.is_terminating() {
                        self.assumed.remove(&key);
                        continue;
                    }
                    if pod.spec.node_name.is_empty() {
                        self.pending.enqueue(key, now);
                    } else {
                        match self.assumed.get(&key) {
                            Some(assumed) if assumed != &pod.spec.node_name => {
                                mismatch = Some((
                                    key.clone(),
                                    assumed.clone(),
                                    pod.spec.node_name.clone(),
                                ));
                            }
                            None => {
                                // Binding made by someone else (DaemonSet
                                // pods): record as truth.
                                self.assumed.insert(key, pod.spec.node_name.clone());
                            }
                            _ => {}
                        }
                    }
                }
                (Kind::Pod, None) => {
                    self.assumed.remove(&*ev.key);
                }
                _ => {}
            }
        }

        if let Some((key, assumed, stored)) = mismatch {
            // The stored binding disagrees with our cache. Assume cache
            // corruption and restart (paper §V-C, Timing example).
            self.metrics.restarts = self.metrics.restarts.saturating_add(1);
            mutiny_telemetry::counter_add("scheduler.cache_restarts", 1);
            self.incarnation += 1;
            self.log(
                api,
                TraceLevel::Error,
                format!(
                    "binding of {key} is {stored:?} but cache says {assumed:?}; \
                     assuming cache corruption, restarting"
                ),
            );
            self.assumed.clear();
            self.pending = WorkQueue::new()
                .with_telemetry("scheduler.queue.depth_hw", "scheduler.bind.wait_ms");
            self.elector.resign();
            // A fresh identity models the restarted process; it must wait
            // out the old lease before scheduling again.
            self.elector.identity = format!("{}-r{}", self.identity, self.incarnation);
            self.state = State::Restarting(now + self.cfg.restart_boot_ms);
            self.cursor = api.watch_head();
            return;
        }

        // Bind pending pods within budget.
        if self.pending.is_empty() {
            return;
        }
        // Nodes and pods are shared handles out of the watch cache:
        // filtering the cluster state is refcount bumps, not deep clones.
        let node_objs = api.list(Kind::Node, None);
        let nodes: Vec<&Node> = node_objs
            .iter()
            .filter_map(|o| match &**o {
                Object::Node(n) => Some(n),
                _ => None,
            })
            .collect();
        let pod_objs = api.list(Kind::Pod, None);
        let all_pods: Vec<&Pod> = pod_objs
            .iter()
            .filter_map(|o| match &**o {
                Object::Pod(p) => Some(p),
                _ => None,
            })
            .collect();
        let mut usage = Usage::from_pods(&all_pods);

        for _ in 0..self.cfg.bind_budget {
            let Some(key) = self.pending.pop_ready(now) else { break };
            let Some((ns, name)) = split_pod_key(&key) else { continue };
            let Some(pod_obj) = api.get(Kind::Pod, &ns, &name) else { continue };
            let Object::Pod(pod) = &*pod_obj else { continue };
            if pod.metadata.is_terminating() || !pod.spec.node_name.is_empty() {
                continue;
            }

            match self.pick_node(pod, &nodes, &usage) {
                Some(node_name) => {
                    let mut bound = pod.clone();
                    bound.spec.node_name = node_name.clone();
                    match api.update(Channel::SchedulerToApi, Object::Pod(bound)) {
                        Ok(_) => {
                            usage.add(&node_name, pod.cpu_request(), pod.memory_request());
                            self.assumed.insert(key.clone(), node_name);
                            self.metrics.scheduled = self.metrics.scheduled.saturating_add(1);
                        }
                        Err(e) => {
                            self.log(api, TraceLevel::Warn, format!("bind {key} failed: {e}"));
                            self.pending.requeue_failed(key, now);
                        }
                    }
                }
                None => {
                    self.metrics.unschedulable_rounds =
                        self.metrics.unschedulable_rounds.saturating_add(1);
                    if pod.spec.priority > 0 {
                        self.try_preempt(api, pod, &nodes, &all_pods);
                    }
                    self.pending.enqueue_after(key, now, self.cfg.unschedulable_retry_ms);
                }
            }
        }
    }

    fn relist(&mut self, api: &mut ApiServer, now: u64) {
        self.assumed.clear();
        for obj in api.list(Kind::Pod, None) {
            let Object::Pod(pod) = &*obj else { continue };
            if pod.metadata.is_terminating() {
                continue;
            }
            let key: Rc<str> =
                k8s_model::registry_key(Kind::Pod, &pod.metadata.namespace, &pod.metadata.name)
                    .into();
            if pod.spec.node_name.is_empty() {
                self.pending.enqueue(key, now);
            } else {
                self.assumed.insert(key, pod.spec.node_name.clone());
            }
        }
    }

    fn pick_node(&self, pod: &Pod, nodes: &[&Node], usage: &Usage) -> Option<String> {
        let mut best: Option<(i64, &str)> = None;
        for node in nodes {
            if !feasible(pod, node, usage) {
                continue;
            }
            let (cpu_used, _) = usage.of(&node.metadata.name);
            // Least-allocated scoring; deterministic tie-break on name.
            let candidate = (cpu_used, node.metadata.name.as_str());
            match best {
                Some(b) if candidate >= b => {}
                _ => best = Some(candidate),
            }
        }
        best.map(|(_, n)| n.to_owned())
    }

    fn try_preempt(&mut self, api: &mut ApiServer, pod: &Pod, nodes: &[&Node], all_pods: &[&Pod]) {
        for node in nodes {
            if node.spec.unschedulable || !node.status.ready {
                continue;
            }
            // Victims: strictly lower priority, not terminating.
            let mut victims: Vec<&Pod> = all_pods
                .iter()
                .copied()
                .filter(|p| {
                    p.spec.node_name == node.metadata.name
                        && !p.metadata.is_terminating()
                        && p.spec.priority < pod.spec.priority
                })
                .collect();
            victims.sort_by_key(|p| p.spec.priority);
            let usage = Usage::from_pods(all_pods);
            let (cpu_used, mem_used) = usage.of(&node.metadata.name);
            let cpu_free = node.status.cpu_milli - cpu_used;
            let mem_free = node.status.memory_mb - mem_used;
            let mut freed_cpu = 0;
            let mut freed_mem = 0;
            let mut chosen: Vec<&Pod> = Vec::new();
            for v in victims {
                if cpu_free + freed_cpu >= pod.cpu_request()
                    && mem_free + freed_mem >= pod.memory_request()
                {
                    break;
                }
                freed_cpu += v.cpu_request();
                freed_mem += v.memory_request();
                chosen.push(v);
            }
            if cpu_free + freed_cpu >= pod.cpu_request()
                && mem_free + freed_mem >= pod.memory_request()
                && !chosen.is_empty()
            {
                for v in chosen {
                    self.log(
                        api,
                        TraceLevel::Warn,
                        format!(
                            "preempting pod {} (priority {}) on {} for {} (priority {})",
                            v.metadata.name,
                            v.spec.priority,
                            node.metadata.name,
                            pod.metadata.name,
                            pod.spec.priority
                        ),
                    );
                    let _ = api.delete(
                        Channel::SchedulerToApi,
                        Kind::Pod,
                        &v.metadata.namespace,
                        &v.metadata.name,
                    );
                    self.metrics.preempted = self.metrics.preempted.saturating_add(1);
                }
                return;
            }
        }
    }
}

/// Per-node resource bookkeeping.
#[derive(Debug, Default)]
struct Usage {
    cpu: HashMap<String, i64>,
    mem: HashMap<String, i64>,
}

impl Usage {
    fn from_pods(pods: &[&Pod]) -> Usage {
        let mut u = Usage::default();
        for p in pods {
            if !p.spec.node_name.is_empty()
                && !p.metadata.is_terminating()
                && p.status.phase != "Succeeded"
                && p.status.phase != "Failed"
            {
                u.add(&p.spec.node_name, p.cpu_request(), p.memory_request());
            }
        }
        u
    }

    fn add(&mut self, node: &str, cpu: i64, mem: i64) {
        *self.cpu.entry(node.to_owned()).or_default() += cpu;
        *self.mem.entry(node.to_owned()).or_default() += mem;
    }

    fn of(&self, node: &str) -> (i64, i64) {
        (self.cpu.get(node).copied().unwrap_or(0), self.mem.get(node).copied().unwrap_or(0))
    }
}

fn feasible(pod: &Pod, node: &Node, usage: &Usage) -> bool {
    if node.spec.unschedulable || !node.status.ready {
        return false;
    }
    for taint in &node.spec.taints {
        if (taint.effect == TAINT_NO_SCHEDULE || taint.effect == TAINT_NO_EXECUTE)
            && !pod.tolerates(&taint.key, &taint.effect)
        {
            return false;
        }
    }
    let (cpu_used, mem_used) = usage.of(&node.metadata.name);
    cpu_used + pod.cpu_request() <= node.status.cpu_milli
        && mem_used + pod.memory_request() <= node.status.memory_mb
}

fn split_pod_key(key: &str) -> Option<(String, String)> {
    let rest = key.strip_prefix("/registry/pods/")?;
    let (ns, name) = rest.split_once('/')?;
    Some((ns.to_owned(), name.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcd_sim::Etcd;
    use k8s_apiserver::InterceptorHandle;
    use k8s_model::{Container, NoopInterceptor, ObjectMeta};
    use simkit::Trace;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn api() -> ApiServer {
        let interceptor: InterceptorHandle = Rc::new(RefCell::new(NoopInterceptor));
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(256)));
        ApiServer::new(Etcd::new(1, 8 << 20), interceptor, trace)
    }

    fn make_pod(ns: &str, name: &str, cpu: i64, priority: i64) -> Object {
        let mut p = Pod::default();
        p.metadata = ObjectMeta::named(ns, name);
        p.metadata.labels.insert("app".into(), "web".into());
        p.spec.priority = priority;
        p.spec.containers.push(Container {
            name: "c".into(),
            image: "img:1".into(),
            cpu_milli: cpu,
            memory_mb: 64,
            port: 8080,
            ..Default::default()
        });
        Object::Pod(p)
    }

    fn make_node(api: &mut ApiServer, name: &str, cpu: i64) {
        let n = Node::worker(name, cpu, 4096);
        api.create(Channel::KubeletToApi, Object::Node(n)).unwrap();
    }

    fn trace_handle() -> TraceHandle {
        Rc::new(RefCell::new(Trace::new(256)))
    }

    #[test]
    fn binds_pending_pod_to_feasible_node() {
        let mut api = api();
        make_node(&mut api, "w1", 8000);
        api.create(Channel::UserToApi, make_pod("default", "p1", 500, 0)).unwrap();
        let mut s = Scheduler::new("sched-0", SchedulerConfig::default(), &api, trace_handle());
        s.step(&mut api, 100);
        s.step(&mut api, 200);
        let pod = api.get(Kind::Pod, "default", "p1").unwrap();
        assert_eq!(pod.as_pod().unwrap().spec.node_name, "w1");
        assert_eq!(s.metrics.scheduled, 1);
    }

    #[test]
    fn spreads_by_least_allocated() {
        let mut api = api();
        make_node(&mut api, "w1", 8000);
        make_node(&mut api, "w2", 8000);
        for i in 0..4 {
            api.create(Channel::UserToApi, make_pod("default", &format!("p{i}"), 1000, 0))
                .unwrap();
        }
        let mut s = Scheduler::new("sched-0", SchedulerConfig::default(), &api, trace_handle());
        s.step(&mut api, 100);
        s.step(&mut api, 200);
        let pods = api.list(Kind::Pod, Some("default"));
        let on_w1 = pods.iter().filter(|p| p.as_pod().unwrap().spec.node_name == "w1").count();
        let on_w2 = pods.iter().filter(|p| p.as_pod().unwrap().spec.node_name == "w2").count();
        assert_eq!((on_w1, on_w2), (2, 2));
    }

    #[test]
    fn respects_capacity_and_leaves_pending() {
        let mut api = api();
        make_node(&mut api, "w1", 1000);
        api.create(Channel::UserToApi, make_pod("default", "big", 900, 0)).unwrap();
        api.create(Channel::UserToApi, make_pod("default", "big2", 900, 0)).unwrap();
        let mut s = Scheduler::new("sched-0", SchedulerConfig::default(), &api, trace_handle());
        s.step(&mut api, 100);
        s.step(&mut api, 200);
        let bound = api
            .list(Kind::Pod, Some("default"))
            .iter()
            .filter(|p| !p.as_pod().unwrap().spec.node_name.is_empty())
            .count();
        assert_eq!(bound, 1);
        assert!(s.pending_len() >= 1);
        assert!(s.metrics.unschedulable_rounds >= 1);
    }

    #[test]
    fn respects_noschedule_taints() {
        let mut api = api();
        let mut n = Node::worker("w1", 8000, 4096);
        n.add_taint("maintenance", TAINT_NO_SCHEDULE);
        api.create(Channel::KubeletToApi, Object::Node(n)).unwrap();
        api.create(Channel::UserToApi, make_pod("default", "p1", 100, 0)).unwrap();
        let mut s = Scheduler::new("sched-0", SchedulerConfig::default(), &api, trace_handle());
        s.step(&mut api, 100);
        s.step(&mut api, 200);
        let pod = api.get(Kind::Pod, "default", "p1").unwrap();
        assert!(pod.as_pod().unwrap().spec.node_name.is_empty());
    }

    #[test]
    fn preempts_lower_priority_when_full() {
        let mut api = api();
        make_node(&mut api, "w1", 1000);
        api.create(Channel::UserToApi, make_pod("default", "low", 900, 0)).unwrap();
        let mut s = Scheduler::new("sched-0", SchedulerConfig::default(), &api, trace_handle());
        s.step(&mut api, 100);
        s.step(&mut api, 200);
        // Now a high-priority pod arrives that cannot fit.
        api.create(Channel::UserToApi, make_pod("default", "high", 900, 1000)).unwrap();
        s.step(&mut api, 300);
        s.step(&mut api, 400);
        // The low-priority pod must have been preempted (deleted).
        assert!(api.get(Kind::Pod, "default", "low").is_none());
        assert!(s.metrics.preempted >= 1);
        // And the high-priority pod eventually binds.
        s.step(&mut api, 1500);
        let high = api.get(Kind::Pod, "default", "high").unwrap();
        assert_eq!(high.as_pod().unwrap().spec.node_name, "w1");
    }

    #[test]
    fn cache_mismatch_triggers_restart_and_reelection_delay() {
        let mut api = api();
        make_node(&mut api, "w1", 8000);
        api.create(Channel::UserToApi, make_pod("default", "p1", 100, 0)).unwrap();
        let mut s = Scheduler::new("sched-0", SchedulerConfig::default(), &api, trace_handle());
        s.step(&mut api, 100);
        s.step(&mut api, 200);
        assert!(s.is_leader());

        // Corrupt the binding in the store (ApiToEtcd channel bypasses
        // admission ownership rules).
        let mut pod = (*api.get(Kind::Pod, "default", "p1").unwrap()).clone();
        if let Object::Pod(p) = &mut pod {
            p.spec.node_name = "ghost-node".into();
        }
        api.update(Channel::ApiToEtcd, pod).unwrap();

        s.step(&mut api, 300);
        assert!(s.is_restarting());
        assert_eq!(s.metrics.restarts, 1);
        assert!(!s.is_leader());

        // During boot + lease wait, nothing schedules.
        api.create(Channel::UserToApi, make_pod("default", "p2", 100, 0)).unwrap();
        s.step(&mut api, 1000);
        let p2 = api.get(Kind::Pod, "default", "p2").unwrap();
        assert!(p2.as_pod().unwrap().spec.node_name.is_empty());

        // After the old lease expires (~15 s) the new incarnation leads
        // again and schedules the backlog.
        let mut t = 2500;
        while t < 40_000 {
            s.step(&mut api, t);
            t += 500;
        }
        let p2 = api.get(Kind::Pod, "default", "p2").unwrap();
        assert_eq!(p2.as_pod().unwrap().spec.node_name, "w1");
    }
}
