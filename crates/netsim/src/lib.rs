//! # k8s-netsim — simulated cluster networking and client traffic
//!
//! Models the networking stack the paper's Net/Out failures flow through:
//!
//! * a **network-manager DaemonSet** (flannel-like): each node's agent pod
//!   programs routes to every other node's pod CIDR; when the agent pod is
//!   down (deleted, crashlooping, preempted) that node's routes go stale,
//!   and a cluster-wide agent failure is a cluster-wide network outage —
//!   the Reddit Pi-Day pattern;
//! * a **kube-proxy DaemonSet**: each node's proxy programs the service
//!   VIP table from Services and Endpoints; staleness and corrupted
//!   selectors/ports/addresses surface here;
//! * **coreDNS**: name resolution is available while at least one DNS pod
//!   is ready; apps with `needsDns` fail without it (the paper notes its
//!   app did *not* require DNS, which is why some Outages left response
//!   times intact — we keep that configurable);
//! * a **traffic engine**: evaluates each client request against routes,
//!   proxy state, endpoint truthfulness, port agreement and per-pod load,
//!   yielding latency, connection-refused, or timeout outcomes.

use k8s_apiserver::ApiServer;
use k8s_model::validate::{is_cidr, is_ipv4};
use k8s_model::{Kind, Object, Pod};
use simkit::Rng;
use std::collections::{HashMap, HashSet};

/// The outcome of one client request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RequestOutcome {
    /// Served within the timeout.
    Ok {
        /// End-to-end latency in milliseconds.
        latency_ms: f64,
    },
    /// Connection refused (no VIP, no backends, port mismatch).
    Refused,
    /// Packets blackholed or server overloaded past the client timeout.
    Timeout,
    /// Name resolution failed (app requires DNS and DNS is down).
    DnsFailure,
}

impl RequestOutcome {
    /// True for any failed outcome.
    pub fn is_failure(&self) -> bool {
        !matches!(self, RequestOutcome::Ok { .. })
    }
}

/// Traffic engine tunables.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Network round-trip base latency.
    pub base_latency_ms: f64,
    /// Mean request processing time in the app pod.
    pub proc_ms: f64,
    /// Processing-time standard deviation.
    pub proc_jitter_ms: f64,
    /// Requests/second one pod sustains before queueing delays kick in.
    pub pod_capacity_rps: f64,
    /// Client-side timeout.
    pub client_timeout_ms: f64,
    /// Publish per-service request rates into the `service-load` ConfigMap
    /// on every refresh (the metric source for the autoscaler controller).
    /// Off by default: the paper's campaign runs without an autoscaler.
    pub publish_metrics: bool,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            base_latency_ms: 12.0,
            proc_ms: 8.0,
            proc_jitter_ms: 2.0,
            pod_capacity_rps: 15.0,
            client_timeout_ms: 1_000.0,
            publish_metrics: false,
        }
    }
}

/// Counters exposed to the failure classifiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetMetrics {
    /// Requests served.
    pub ok: u64,
    /// Connection-refused failures.
    pub refused: u64,
    /// Timeouts.
    pub timeouts: u64,
    /// DNS failures.
    pub dns_failures: u64,
}

#[derive(Debug, Clone, Default)]
struct ProxyEntry {
    cluster_ip: String,
    service_port: i64,
    endpoints: Vec<(String, String, i64)>, // (ip, pod_name, port)
}

/// The simulated cluster network.
#[derive(Clone)]
pub struct NetSim {
    cfg: NetConfig,
    /// Destination nodes reachable from each node (programmed routes).
    routes: HashMap<String, HashSet<String>>,
    agent_up: HashMap<String, bool>,
    /// Per-node VIP tables: `ns/name` → entry.
    proxy: HashMap<String, HashMap<String, ProxyEntry>>,
    proxy_up: HashMap<String, bool>,
    dns_up: bool,
    rr: HashMap<String, usize>,
    window_start: u64,
    pod_load: HashMap<String, u32>,
    /// Requests per service (`ns/name`) in the current one-second window.
    svc_load: HashMap<String, u32>,
    /// Last complete window's per-service request counts (≈ RPS).
    svc_load_published: HashMap<String, u32>,
    /// Metrics exposed to the classifiers.
    pub metrics: NetMetrics,
    rng: Rng,
}

impl std::fmt::Debug for NetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetSim")
            .field("dns_up", &self.dns_up)
            .field("nodes_with_routes", &self.routes.len())
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl NetSim {
    /// Creates an empty network; call [`NetSim::refresh`] to program it.
    pub fn new(cfg: NetConfig, rng: Rng) -> NetSim {
        NetSim {
            cfg,
            routes: HashMap::new(),
            agent_up: HashMap::new(),
            proxy: HashMap::new(),
            proxy_up: HashMap::new(),
            dns_up: false,
            rr: HashMap::new(),
            window_start: 0,
            pod_load: HashMap::new(),
            svc_load: HashMap::new(),
            svc_load_published: HashMap::new(),
            metrics: NetMetrics::default(),
            rng,
        }
    }

    /// The last complete window's request count (≈ RPS) for `ns/name`.
    pub fn service_load(&self, ns: &str, name: &str) -> u32 {
        self.svc_load_published.get(&format!("{ns}/{name}")).copied().unwrap_or(0)
    }

    /// True while cluster DNS can resolve names.
    pub fn dns_up(&self) -> bool {
        self.dns_up
    }

    /// Nodes whose network agent is currently down.
    pub fn agents_down(&self) -> usize {
        self.agent_up.values().filter(|up| !**up).count()
    }

    /// Nodes known to the network fabric.
    pub fn node_count(&self) -> usize {
        self.agent_up.len()
    }

    /// Rolls the one-second load window if it elapsed, snapshotting the
    /// per-service demand for publication.
    fn roll_window(&mut self, now: u64) {
        if now.saturating_sub(self.window_start) >= 1_000 {
            self.window_start = now;
            self.pod_load.clear();
            self.svc_load_published = std::mem::take(&mut self.svc_load);
        }
    }

    /// Reprograms routes, VIP tables and DNS state from the API (one
    /// kube-proxy / network-agent sync round).
    pub fn refresh(&mut self, api: &mut ApiServer) {
        self.roll_window(api.now());
        let nodes: Vec<(String, String)> = api
            .list(Kind::Node, None)
            .iter()
            .filter_map(|o| match &**o {
                Object::Node(n) => Some((n.metadata.name.clone(), n.spec.pod_cidr.clone())),
                _ => None,
            })
            .collect();

        // Shared handles out of the watch cache — no deep clones.
        let pod_objs = api.list(Kind::Pod, None);
        let pods: Vec<&Pod> = pod_objs
            .iter()
            .filter_map(|o| match &**o {
                Object::Pod(p) => Some(p),
                _ => None,
            })
            .collect();

        let pod_serving = |p: &&&Pod| {
            p.status.phase == "Running" && p.status.ready && !p.metadata.is_terminating()
        };

        // Which nodes run a live network agent / kube-proxy?
        let mut agents: HashSet<&str> = HashSet::new();
        let mut proxies: HashSet<&str> = HashSet::new();
        for p in pods.iter().filter(pod_serving) {
            match p.metadata.labels.get("app").map(String::as_str) {
                Some("net-agent") => {
                    agents.insert(p.spec.node_name.as_str());
                }
                Some("kube-proxy") => {
                    proxies.insert(p.spec.node_name.as_str());
                }
                _ => {}
            }
        }

        // Route programming: an up agent installs routes to every node
        // announcing a valid pod CIDR. A down agent leaves routes stale.
        for (name, _) in &nodes {
            let up = agents.contains(name.as_str());
            self.agent_up.insert(name.clone(), up);
            if up {
                let dests: HashSet<String> = nodes
                    .iter()
                    .filter(|(_, cidr)| is_cidr(cidr))
                    .map(|(n, _)| n.clone())
                    .collect();
                self.routes.insert(name.clone(), dests);
            }
        }

        // VIP tables per node with a live kube-proxy.
        let mut table: HashMap<String, ProxyEntry> = HashMap::new();
        for obj in api.list(Kind::Service, None) {
            let Object::Service(svc) = &*obj else { continue };
            let key = format!("{}/{}", svc.metadata.namespace, svc.metadata.name);
            let mut entry = ProxyEntry {
                cluster_ip: svc.spec.cluster_ip.clone(),
                service_port: svc.spec.port,
                endpoints: Vec::new(),
            };
            if let Some(Object::Endpoints(ep)) =
                api.get(Kind::Endpoints, &svc.metadata.namespace, &svc.metadata.name).as_deref()
            {
                for a in ep.ready_addresses() {
                    entry.endpoints.push((a.ip.clone(), a.pod_name.clone(), ep.port));
                }
            }
            table.insert(key, entry);
        }
        for (name, _) in &nodes {
            let up = proxies.contains(name.as_str());
            self.proxy_up.insert(name.clone(), up);
            if up {
                self.proxy.insert(name.clone(), table.clone());
            }
        }

        // DNS availability.
        let dns_pods_ready = pods
            .iter()
            .filter(pod_serving)
            .any(|p| p.metadata.labels.get("k8s-app").map(String::as_str) == Some("kube-dns"));
        let dns_svc = api.get(Kind::Service, "kube-system", "kube-dns").is_some();
        self.dns_up = dns_pods_ready && dns_svc;

        if self.cfg.publish_metrics {
            self.publish_service_load(api);
        }
    }

    /// Writes the per-service request rates into the `service-load`
    /// ConfigMap the autoscaler controller reads. Best-effort: a failed
    /// write leaves the previous (stale) metric in place, exactly the
    /// staleness window a real metrics pipeline has.
    fn publish_service_load(&mut self, api: &mut ApiServer) {
        use k8s_model::{Channel, ConfigMap, ObjectMeta};
        let mut data: std::collections::BTreeMap<String, String> = self
            .svc_load_published
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        // Services with no traffic this window report zero explicitly, so
        // scale-down decisions have data to act on.
        for obj in api.list(Kind::Service, None) {
            data.entry(format!("{}/{}", obj.namespace(), obj.name())).or_insert_with(|| "0".into());
        }
        let existing = api.get(Kind::ConfigMap, "kube-system", "service-load");
        match existing.as_deref() {
            Some(Object::ConfigMap(cm)) => {
                if cm.data != data {
                    let mut cm = cm.clone();
                    cm.data = data;
                    let _ = api.update(Channel::KcmToApi, Object::ConfigMap(cm));
                }
            }
            _ => {
                let mut cm = ConfigMap::default();
                cm.metadata = ObjectMeta::named("kube-system", "service-load");
                cm.data = data;
                let _ = api.create(Channel::KcmToApi, Object::ConfigMap(cm));
            }
        }
    }

    /// Evaluates one client request from `from_node` to `ns/svc:port`.
    #[allow(clippy::too_many_arguments)]
    pub fn request(
        &mut self,
        api: &mut ApiServer,
        now: u64,
        from_node: &str,
        ns: &str,
        svc: &str,
        expect_port: i64,
        needs_dns: bool,
    ) -> RequestOutcome {
        let outcome = self.request_inner(api, now, from_node, ns, svc, expect_port, needs_dns);
        match outcome {
            RequestOutcome::Ok { .. } => {
                self.metrics.ok = self.metrics.ok.saturating_add(1);
                mutiny_telemetry::counter_add("net.request.ok", 1);
            }
            RequestOutcome::Refused => {
                self.metrics.refused = self.metrics.refused.saturating_add(1);
                mutiny_telemetry::counter_add("net.request.refused", 1);
            }
            RequestOutcome::Timeout => {
                self.metrics.timeouts = self.metrics.timeouts.saturating_add(1);
                mutiny_telemetry::counter_add("net.request.timeout", 1);
            }
            RequestOutcome::DnsFailure => {
                self.metrics.dns_failures = self.metrics.dns_failures.saturating_add(1);
                mutiny_telemetry::counter_add("net.request.dns_failure", 1);
            }
        }
        outcome
    }

    #[allow(clippy::too_many_arguments)]
    fn request_inner(
        &mut self,
        api: &mut ApiServer,
        now: u64,
        from_node: &str,
        ns: &str,
        svc: &str,
        expect_port: i64,
        needs_dns: bool,
    ) -> RequestOutcome {
        // Window roll + per-service demand accounting. Demand is counted
        // for every attempt (the client keeps knocking even when the
        // service is down), which is what a front-door metric would see.
        self.roll_window(now);
        *self.svc_load.entry(format!("{ns}/{svc}")).or_insert(0) += 1;

        if needs_dns && !self.dns_up {
            return RequestOutcome::DnsFailure;
        }
        let key = format!("{ns}/{svc}");
        let Some(entry) = self.proxy.get(from_node).and_then(|t| t.get(&key)) else {
            return RequestOutcome::Refused; // VIP not programmed here
        };
        if entry.cluster_ip.is_empty() || !is_ipv4(&entry.cluster_ip) {
            return RequestOutcome::Refused;
        }
        if entry.service_port != expect_port {
            return RequestOutcome::Refused; // VIP not listening on this port
        }
        if entry.endpoints.is_empty() {
            return RequestOutcome::Refused; // no backends
        }
        let idx = {
            let c = self.rr.entry(key).or_insert(0);
            *c = c.wrapping_add(1);
            *c % entry.endpoints.len()
        };
        let (ep_ip, _ep_pod, ep_port) = entry.endpoints[idx].clone();

        // Find the pod actually holding that IP (shared handles, no
        // deep clones of the namespace's pods).
        let pod_objs = api.list(Kind::Pod, Some(ns));
        let target: Option<&Pod> = pod_objs
            .iter()
            .filter_map(|o| match &**o {
                Object::Pod(p) => Some(p),
                _ => None,
            })
            .find(|p| p.status.pod_ip == ep_ip && p.status.phase == "Running" && p.status.ready);
        let Some(pod) = target else {
            return RequestOutcome::Timeout; // packets to a dead IP blackhole
        };

        // Route check: forward and return paths must be programmed.
        let dest = pod.spec.node_name.as_str();
        if dest != from_node {
            let fwd = self.routes.get(from_node).map(|r| r.contains(dest)).unwrap_or(false);
            let back = self.routes.get(dest).map(|r| r.contains(from_node)).unwrap_or(false);
            if !fwd || !back {
                return RequestOutcome::Timeout;
            }
        }

        // Port agreement: endpoint port must match the container port.
        let container_port = pod.spec.containers.first().map(|c| c.port).unwrap_or(0);
        if ep_port != container_port {
            return RequestOutcome::Refused;
        }

        // Load model: per-pod queueing in one-second windows.
        let load = {
            let l = self.pod_load.entry(ep_ip).or_insert(0);
            *l += 1;
            *l
        };
        let rho = f64::from(load) / self.cfg.pod_capacity_rps;
        let mut latency = self.cfg.base_latency_ms
            + self.rng.normal(self.cfg.proc_ms, self.cfg.proc_jitter_ms).abs();
        if rho > 1.0 {
            latency *= rho * rho;
        }
        if latency > self.cfg.client_timeout_ms {
            return RequestOutcome::Timeout;
        }
        RequestOutcome::Ok { latency_ms: latency }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use etcd_sim::Etcd;
    use k8s_apiserver::{InterceptorHandle, TraceHandle};
    use k8s_model::{
        Channel, Container, EndpointAddress, Endpoints, NoopInterceptor, ObjectMeta, Service,
    };
    use simkit::Trace;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn api() -> ApiServer {
        let interceptor: InterceptorHandle = Rc::new(RefCell::new(NoopInterceptor));
        let trace: TraceHandle = Rc::new(RefCell::new(Trace::new(256)));
        ApiServer::new(Etcd::new(1, 8 << 20), interceptor, trace)
    }

    /// Builds a two-node cluster with one serving app pod, agents and
    /// proxies on both nodes, and a service+endpoints for the app.
    fn build_world(api: &mut ApiServer) {
        for (i, name) in ["w1", "w2"].iter().enumerate() {
            let mut n = k8s_model::Node::worker(name, 8000, 4096);
            n.spec.pod_cidr = format!("10.244.{i}.0/24");
            api.create(Channel::KubeletToApi, Object::Node(n)).unwrap();
            for (role, label) in [("net-agent", "net-agent"), ("kube-proxy", "kube-proxy")] {
                let mut p = Pod::default();
                p.metadata = ObjectMeta::named("kube-system", &format!("{role}-{name}"));
                p.metadata.labels.insert("app".into(), label.into());
                p.spec.node_name = name.to_string();
                p.spec.containers.push(Container {
                    name: "c".into(),
                    image: "registry.local/sys:1".into(),
                    ..Default::default()
                });
                p.status.phase = "Running".into();
                p.status.ready = true;
                api.create(Channel::ApiToEtcd, Object::Pod(p)).unwrap();
            }
        }
        // The app pod on w2.
        let mut p = Pod::default();
        p.metadata = ObjectMeta::named("default", "web-1");
        p.metadata.labels.insert("app".into(), "web".into());
        p.spec.node_name = "w2".into();
        p.spec.containers.push(Container {
            name: "c".into(),
            image: "registry.local/web:1".into(),
            port: 8080,
            ..Default::default()
        });
        p.status.phase = "Running".into();
        p.status.ready = true;
        p.status.pod_ip = "10.244.1.5".into();
        api.create(Channel::ApiToEtcd, Object::Pod(p)).unwrap();

        let mut svc = Service::default();
        svc.metadata = ObjectMeta::named("default", "web-svc");
        svc.spec.selector.insert("app".into(), "web".into());
        svc.spec.cluster_ip = "10.96.0.20".into();
        svc.spec.port = 80;
        svc.spec.target_port = 8080;
        api.create(Channel::UserToApi, Object::Service(svc)).unwrap();

        let mut ep = Endpoints::default();
        ep.metadata = ObjectMeta::named("default", "web-svc");
        ep.addresses.push(EndpointAddress {
            ip: "10.244.1.5".into(),
            pod_name: "web-1".into(),
            node_name: "w2".into(),
            ready: true,
        });
        ep.port = 8080;
        api.create(Channel::KcmToApi, Object::Endpoints(ep)).unwrap();
    }

    fn net() -> NetSim {
        NetSim::new(NetConfig::default(), Rng::new(11))
    }

    #[test]
    fn healthy_path_serves_with_latency() {
        let mut api = api();
        build_world(&mut api);
        let mut n = net();
        n.refresh(&mut api);
        let out = n.request(&mut api, 1000, "w1", "default", "web-svc", 80, false);
        match out {
            RequestOutcome::Ok { latency_ms } => assert!(latency_ms > 5.0 && latency_ms < 100.0),
            other => panic!("expected ok, got {other:?}"),
        }
        assert_eq!(n.metrics.ok, 1);
    }

    #[test]
    fn missing_endpoints_refuses() {
        let mut api = api();
        build_world(&mut api);
        // Empty the endpoints (as a corrupted selector would).
        if let Some(Object::Endpoints(ep)) = api.get(Kind::Endpoints, "default", "web-svc").as_deref() {
            let mut ep = ep.clone();
            ep.addresses.clear();
            api.update(Channel::ApiToEtcd, Object::Endpoints(ep)).unwrap();
        }
        let mut n = net();
        n.refresh(&mut api);
        let out = n.request(&mut api, 1000, "w1", "default", "web-svc", 80, false);
        assert_eq!(out, RequestOutcome::Refused);
    }

    #[test]
    fn endpoint_to_dead_ip_times_out() {
        let mut api = api();
        build_world(&mut api);
        if let Some(Object::Endpoints(ep)) = api.get(Kind::Endpoints, "default", "web-svc").as_deref() {
            let mut ep = ep.clone();
            ep.addresses[0].ip = "10.244.1.99".into(); // nobody there
            api.update(Channel::ApiToEtcd, Object::Endpoints(ep)).unwrap();
        }
        let mut n = net();
        n.refresh(&mut api);
        let out = n.request(&mut api, 1000, "w1", "default", "web-svc", 80, false);
        assert_eq!(out, RequestOutcome::Timeout);
    }

    #[test]
    fn wrong_service_port_refuses() {
        let mut api = api();
        build_world(&mut api);
        let mut n = net();
        n.refresh(&mut api);
        // Client still expects 80; the VIP listens on what spec says.
        let out = n.request(&mut api, 1000, "w1", "default", "web-svc", 81, false);
        assert_eq!(out, RequestOutcome::Refused);
    }

    #[test]
    fn dead_network_agent_blackholes_cross_node_traffic() {
        let mut api = api();
        build_world(&mut api);
        let mut n = net();
        n.refresh(&mut api);
        // Kill w1's net agent pod; its routes were programmed, but now kill
        // w2's agent *before first refresh of a fresh NetSim* to model a
        // node whose routes never got programmed.
        api.delete(Channel::KcmToApi, Kind::Pod, "kube-system", "net-agent-w1").unwrap();
        let mut fresh = net();
        fresh.refresh(&mut api);
        let out = fresh.request(&mut api, 1000, "w1", "default", "web-svc", 80, false);
        assert_eq!(out, RequestOutcome::Timeout);
        assert_eq!(fresh.agents_down(), 1);
    }

    #[test]
    fn dns_requirement_enforced() {
        let mut api = api();
        build_world(&mut api);
        let mut n = net();
        n.refresh(&mut api);
        assert!(!n.dns_up());
        let out = n.request(&mut api, 1000, "w1", "default", "web-svc", 80, true);
        assert_eq!(out, RequestOutcome::DnsFailure);
        // Without the DNS requirement the same request succeeds — the
        // paper's observation that Outages need not hurt a DNS-free app.
        let out = n.request(&mut api, 1001, "w1", "default", "web-svc", 80, false);
        assert!(matches!(out, RequestOutcome::Ok { .. }));
    }

    #[test]
    fn overload_inflates_latency_and_times_out() {
        let mut api = api();
        build_world(&mut api);
        let mut n = net();
        n.refresh(&mut api);
        let mut worst: f64 = 0.0;
        let mut timeouts = 0;
        for i in 0..200 {
            match n.request(&mut api, 1000 + i, "w1", "default", "web-svc", 80, false) {
                RequestOutcome::Ok { latency_ms } => worst = worst.max(latency_ms),
                RequestOutcome::Timeout => timeouts += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(worst > 50.0 || timeouts > 0, "overload had no effect");
    }
}
