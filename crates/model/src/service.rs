//! Services and Endpoints: the service-networking resources.
//!
//! Service selector/port corruption is the paper's main source of
//! Service-Network (Net) failures and of the client-visible Intermittent
//! Availability / Service Unreachable categories.

use crate::meta::ObjectMeta;
use protowire::proto_message;

proto_message! {
    /// Desired state of a Service.
    pub struct ServiceSpec {
        /// Plain label map (not a LabelSelector message), as in Kubernetes:
        /// pods matching all pairs become endpoints. An empty map selects
        /// nothing.
        1 => selector: map,
        /// Stable virtual IP the clients connect to.
        2 => cluster_ip @ "clusterIP": str,
        /// Port exposed on the cluster IP.
        3 => port: int,
        /// Container port traffic is forwarded to.
        4 => target_port @ "targetPort": int,
        5 => protocol: str,
    }
}

proto_message! {
    /// A single network endpoint that can respond to client requests.
    pub struct Service {
        1 => metadata: msg<ObjectMeta>,
        2 => spec: msg<ServiceSpec>,
    }
}

proto_message! {
    /// One resolved backend address of a Service.
    pub struct EndpointAddress {
        1 => ip: str,
        2 => pod_name @ "podName": str,
        3 => node_name @ "nodeName": str,
        4 => ready: bool,
    }
}

proto_message! {
    /// The backend set of a Service, maintained by the endpoints controller
    /// and consumed by every node's kube-proxy.
    pub struct Endpoints {
        1 => metadata: msg<ObjectMeta>,
        2 => addresses: rep<EndpointAddress>,
        3 => port: int,
    }
}

impl Service {
    /// True when `labels` satisfies the service selector (empty selector
    /// selects nothing).
    pub fn selects(&self, labels: &std::collections::BTreeMap<String, String>) -> bool {
        if self.spec.selector.is_empty() {
            return false;
        }
        self.spec.selector.iter().all(|(k, v)| labels.get(k) == Some(v))
    }
}

impl Endpoints {
    /// Addresses currently marked ready.
    pub fn ready_addresses(&self) -> impl Iterator<Item = &EndpointAddress> {
        self.addresses.iter().filter(|a| a.ready)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protowire::reflect::{Reflect, Value};
    use protowire::Message;
    use std::collections::BTreeMap;

    fn svc() -> Service {
        let mut s = Service::default();
        s.metadata = ObjectMeta::named("default", "web-svc");
        s.spec.selector.insert("app".into(), "web".into());
        s.spec.cluster_ip = "10.96.0.10".into();
        s.spec.port = 80;
        s.spec.target_port = 8080;
        s.spec.protocol = "TCP".into();
        s
    }

    #[test]
    fn roundtrip() {
        let s = svc();
        assert_eq!(Service::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn selection_semantics() {
        let s = svc();
        let mut labels = BTreeMap::new();
        labels.insert("app".to_string(), "web".to_string());
        assert!(s.selects(&labels));
        labels.insert("app".to_string(), "wea".to_string()); // one corrupted bit
        assert!(!s.selects(&labels));

        let mut empty = s;
        empty.spec.selector.clear();
        let mut l = BTreeMap::new();
        l.insert("app".to_string(), "web".to_string());
        assert!(!empty.selects(&l));
    }

    #[test]
    fn endpoints_ready_filter() {
        let mut e = Endpoints::default();
        e.addresses.push(EndpointAddress { ip: "10.0.0.1".into(), ready: true, ..Default::default() });
        e.addresses.push(EndpointAddress { ip: "10.0.0.2".into(), ready: false, ..Default::default() });
        let ready: Vec<_> = e.ready_addresses().map(|a| a.ip.as_str()).collect();
        assert_eq!(ready, vec!["10.0.0.1"]);
    }

    #[test]
    fn networking_fields_reachable_by_injection() {
        let mut s = svc();
        assert_eq!(s.get_field("spec.port"), Some(Value::Int(80)));
        assert!(s.set_field("spec.port", Value::Int(81))); // bit-0 flip of 80
        assert!(s.set_field("spec.clusterIP", Value::Str(String::new())));
        assert!(s.set_field("spec.selector['app']", Value::Str("wfb".into())));
        assert_eq!(s.spec.port, 81);
        assert!(s.spec.cluster_ip.is_empty());
    }
}
