//! Label selectors: the dynamic dependency mechanism.
//!
//! A selector matches an object when every `matchLabels` entry is present
//! with an equal value in the object's labels. The paper's key observation
//! (F2) is that this flexibility is a resiliency hazard: a selector that no
//! longer matches its controller's own pod template makes every spawned pod
//! invisible to the controller, which then spawns another — the
//! uncontrolled-replication pattern behind both a real-world outage (\[19\] in
//! the paper) and 51% of the campaign's critical failures.

use protowire::proto_message;
use std::collections::BTreeMap;

proto_message! {
    /// An equality-based label selector.
    pub struct LabelSelector {
        1 => match_labels @ "matchLabels": map,
    }
}

impl LabelSelector {
    /// Builds a selector requiring a single `key = value` pair.
    pub fn eq(key: &str, value: &str) -> LabelSelector {
        let mut s = LabelSelector::default();
        s.match_labels.insert(key.to_owned(), value.to_owned());
        s
    }

    /// True when every required pair appears in `labels`.
    ///
    /// An **empty selector matches nothing** — matching everything would let
    /// a corrupted (emptied) selector adopt every pod in the namespace,
    /// which real Kubernetes forbids for workload controllers.
    pub fn matches(&self, labels: &BTreeMap<String, String>) -> bool {
        if self.match_labels.is_empty() {
            return false;
        }
        self.match_labels.iter().all(|(k, v)| labels.get(k) == Some(v))
    }

    /// True when the selector has no requirements.
    pub fn is_empty(&self) -> bool {
        self.match_labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protowire::Message;

    fn labels(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn matches_when_all_pairs_present() {
        let mut s = LabelSelector::eq("app", "web");
        s.match_labels.insert("tier".into(), "fe".into());
        assert!(s.matches(&labels(&[("app", "web"), ("tier", "fe"), ("extra", "x")])));
        assert!(!s.matches(&labels(&[("app", "web")])));
        assert!(!s.matches(&labels(&[("app", "db"), ("tier", "fe")])));
    }

    #[test]
    fn empty_selector_matches_nothing() {
        let s = LabelSelector::default();
        assert!(!s.matches(&labels(&[("app", "web")])));
        assert!(!s.matches(&BTreeMap::new()));
        assert!(s.is_empty());
    }

    #[test]
    fn single_bit_label_corruption_breaks_match() {
        // The paper's uncontrolled-replication trigger in miniature.
        let s = LabelSelector::eq("app", "net-agent");
        let good = labels(&[("app", "net-agent")]);
        let corrupted = labels(&[("app", "net-agenu")]); // 't' ^ 1 = 'u'
        assert!(s.matches(&good));
        assert!(!s.matches(&corrupted));
    }

    #[test]
    fn roundtrip() {
        let s = LabelSelector::eq("a", "b");
        assert_eq!(LabelSelector::decode(&s.encode()).unwrap(), s);
    }
}
