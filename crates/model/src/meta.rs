//! Object metadata: identity, labels, and ownership.
//!
//! The paper's critical-field analysis (F2) finds that 51% of the injections
//! causing critical failures target exactly the fields defined here: the
//! identity triple (`name`, `namespace`, `uid`), `labels`, and
//! `ownerReferences` — the two mechanisms Kubernetes uses to track
//! dependencies between resource instances.

use protowire::proto_message;

proto_message! {
    /// A reference from a dependent object to its owner (e.g. from a Pod to
    /// the ReplicaSet that created it). Garbage collection and controller
    /// adoption both key off this structure, which is why single-bit errors
    /// in it can orphan or delete healthy objects.
    pub struct OwnerReference {
        1 => kind: str,
        2 => name: str,
        3 => uid: str,
        4 => controller: bool,
    }
}

proto_message! {
    /// Standard object metadata carried by every resource instance.
    pub struct ObjectMeta {
        1 => name: str,
        2 => namespace: str,
        3 => uid: str,
        /// Flexible key/value labels; selectors build dynamic dependency
        /// relationships from them ("at the expense of resiliency", §VI-B).
        4 => labels: map,
        5 => annotations: map,
        6 => owner_references @ "ownerReferences": rep<OwnerReference>,
        /// Monotone version stamped by the store on every write.
        7 => resource_version @ "resourceVersion": int,
        /// Bumped on every spec change; controllers compare it with their
        /// recorded `observedGeneration` (the paper's latent-error gate).
        8 => generation: int,
        9 => creation_timestamp @ "creationTimestamp": int,
        10 => deletion_timestamp @ "deletionTimestamp": int,
    }
}

impl ObjectMeta {
    /// Creates metadata with a name and namespace.
    pub fn named(namespace: &str, name: &str) -> ObjectMeta {
        ObjectMeta { name: name.to_owned(), namespace: namespace.to_owned(), ..Default::default() }
    }

    /// The owner reference flagged as the managing controller, if any.
    pub fn controller_ref(&self) -> Option<&OwnerReference> {
        self.owner_references.iter().find(|o| o.controller)
    }

    /// True once a deletion timestamp is set (the object is terminating).
    pub fn is_terminating(&self) -> bool {
        self.deletion_timestamp != 0
    }

    /// Sets or replaces the controller owner reference.
    pub fn set_controller_ref(&mut self, kind: &str, name: &str, uid: &str) {
        self.owner_references.retain(|o| !o.controller);
        self.owner_references.push(OwnerReference {
            kind: kind.to_owned(),
            name: name.to_owned(),
            uid: uid.to_owned(),
            controller: true,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protowire::reflect::{Reflect, Value};
    use protowire::Message;

    fn sample() -> ObjectMeta {
        let mut m = ObjectMeta::named("default", "web-1");
        m.uid = "uid-123".into();
        m.labels.insert("app".into(), "web".into());
        m.resource_version = 42;
        m.generation = 2;
        m.set_controller_ref("ReplicaSet", "web-rs", "uid-rs");
        m
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        assert_eq!(ObjectMeta::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn controller_ref_lookup() {
        let mut m = sample();
        assert_eq!(m.controller_ref().unwrap().name, "web-rs");
        m.owner_references.clear();
        assert!(m.controller_ref().is_none());
    }

    #[test]
    fn set_controller_ref_replaces() {
        let mut m = sample();
        m.set_controller_ref("DaemonSet", "net", "uid-ds");
        let ctrls: Vec<_> = m.owner_references.iter().filter(|o| o.controller).collect();
        assert_eq!(ctrls.len(), 1);
        assert_eq!(ctrls[0].kind, "DaemonSet");
    }

    #[test]
    fn terminating_flag() {
        let mut m = sample();
        assert!(!m.is_terminating());
        m.deletion_timestamp = 1000;
        assert!(m.is_terminating());
    }

    #[test]
    fn reflection_covers_dependency_fields() {
        let m = sample();
        assert_eq!(m.get_field("labels['app']"), Some(Value::Str("web".into())));
        assert_eq!(m.get_field("ownerReferences[0].uid"), Some(Value::Str("uid-rs".into())));
        let mut m2 = m.clone();
        // The paper's flagship injection: one bit in a label value.
        assert!(m2.set_field("labels['app']", Value::Str("wea".into())));
        assert_eq!(m2.labels["app"], "wea");
    }
}
