//! Pods: the unit of scheduling and execution.

use crate::meta::ObjectMeta;
use protowire::proto_message;

proto_message! {
    /// A single container within a pod.
    pub struct Container {
        1 => name: str,
        /// Image reference; an empty or unknown image prevents container
        /// start (ImagePullError — a Less-Resources pattern in the paper).
        2 => image: str,
        3 => command: repstr,
        /// CPU request in millicores (doubles as the limit when no
        /// explicit limit is set).
        4 => cpu_milli @ "cpuMilli": int,
        /// Memory request in MiB (doubles as the limit when no explicit
        /// limit is set).
        5 => memory_mb @ "memoryMb": int,
        6 => port: int,
        /// Explicit CPU limit in millicores; 0 means "same as request".
        /// A limit *below* the request is the classic config defect: the
        /// container is throttled under its own floor and crash-loops.
        7 => cpu_limit_milli @ "cpuLimitMilli": int,
        /// Explicit memory limit in MiB; 0 means "same as request".
        8 => memory_limit_mb @ "memoryLimitMb": int,
    }
}

impl Container {
    /// True when an explicit limit sits below the request — a spec that
    /// parses and validates (both values positive) but dooms the
    /// container at runtime.
    pub fn request_exceeds_limit(&self) -> bool {
        (self.cpu_limit_milli > 0 && self.cpu_milli > self.cpu_limit_milli)
            || (self.memory_limit_mb > 0 && self.memory_mb > self.memory_limit_mb)
    }
}

proto_message! {
    /// Tolerates a taint with the given key and effect.
    pub struct Toleration {
        1 => key: str,
        2 => effect: str,
    }
}

proto_message! {
    /// Desired state of a pod.
    pub struct PodSpec {
        /// Binding target; written once by the scheduler. Corrupting it on a
        /// running pod makes the scheduler detect a cache mismatch and
        /// restart (the paper's Timing-failure example).
        1 => node_name @ "nodeName": str,
        2 => containers: rep<Container>,
        /// Scheduling priority; higher preempts lower.
        3 => priority: int,
        4 => priority_class @ "priorityClassName": str,
        5 => tolerations: rep<Toleration>,
        /// `Always` restarts containers on failure (with backoff).
        6 => restart_policy @ "restartPolicy": str,
        /// Name of the volume the app reads its seed from at startup.
        7 => volume: str,
        /// True when the app resolves its dependencies through cluster DNS.
        8 => needs_dns @ "needsDns": bool,
        /// Grace window (seconds) a running pod keeps serving after a
        /// voluntary delete before it is finalized; 0 means the cluster
        /// default (2 s).
        9 => termination_grace_period_seconds @ "terminationGracePeriodSeconds": int,
        /// Readiness-probe period (seconds); 0 means the cluster default
        /// (probing folded into the kubelet sync, never flapping).
        10 => probe_period_seconds @ "probePeriodSeconds": int,
        /// Consecutive probe failures before the pod is marked NotReady;
        /// 0 means the cluster default.
        11 => probe_failure_threshold @ "probeFailureThreshold": int,
    }
}

proto_message! {
    /// Observed state of a pod, reported by the kubelet.
    pub struct PodStatus {
        /// `Pending`, `Running`, `Succeeded`, `Failed`, or `Terminating`.
        1 => phase: str,
        /// Assigned pod IP; the kubelet overwrites corrupted values with
        /// the truth on its next sync (a recovery path noted in §V-C1).
        2 => pod_ip @ "podIP": str,
        3 => ready: bool,
        4 => restart_count @ "restartCount": int,
        /// Simulated time at which the pod became running.
        5 => start_time @ "startTime": int,
        6 => reason: str,
    }
}

proto_message! {
    /// A set of containers deployed in an isolated environment.
    pub struct Pod {
        1 => metadata: msg<ObjectMeta>,
        2 => spec: msg<PodSpec>,
        3 => status: msg<PodStatus>,
    }
}

impl Pod {
    /// Total CPU request across containers, in millicores.
    pub fn cpu_request(&self) -> i64 {
        self.spec.containers.iter().map(|c| c.cpu_milli.max(0)).sum()
    }

    /// Total memory request across containers, in MiB.
    pub fn memory_request(&self) -> i64 {
        self.spec.containers.iter().map(|c| c.memory_mb.max(0)).sum()
    }

    /// True when scheduled to a node.
    pub fn is_bound(&self) -> bool {
        !self.spec.node_name.is_empty()
    }

    /// True when the pod is running and passing readiness.
    pub fn is_ready(&self) -> bool {
        self.status.phase == "Running" && self.status.ready
    }

    /// The effective termination grace window in milliseconds: the pod's
    /// own `terminationGracePeriodSeconds` when set, `default_ms`
    /// otherwise. Corrupted (negative) values degrade to the default.
    pub fn termination_grace_ms(&self, default_ms: u64) -> u64 {
        let secs = self.spec.termination_grace_period_seconds;
        if secs > 0 {
            (secs as u64).saturating_mul(1_000)
        } else {
            default_ms
        }
    }

    /// The probe window in milliseconds — period × failure threshold,
    /// the time a healthy pod has to answer before it is marked NotReady.
    /// `None` when either knob is unset (cluster-default probing, which
    /// never flaps a healthy pod).
    pub fn probe_window_ms(&self) -> Option<u64> {
        let period = self.spec.probe_period_seconds;
        let threshold = self.spec.probe_failure_threshold;
        if period > 0 && threshold > 0 {
            Some((period as u64).saturating_mul(threshold as u64).saturating_mul(1_000))
        } else {
            None
        }
    }

    /// True when any container's explicit limit sits below its request
    /// (see [`Container::request_exceeds_limit`]).
    pub fn request_exceeds_limit(&self) -> bool {
        self.spec.containers.iter().any(Container::request_exceeds_limit)
    }

    /// True when the pod tolerates a taint with `key`/`effect`.
    pub fn tolerates(&self, key: &str, effect: &str) -> bool {
        self.spec
            .tolerations
            .iter()
            .any(|t| (t.key == key || t.key.is_empty()) && (t.effect == effect || t.effect.is_empty()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protowire::reflect::{Reflect, Value};
    use protowire::Message;

    fn sample() -> Pod {
        let mut p = Pod::default();
        p.metadata = ObjectMeta::named("default", "web-1");
        p.metadata.labels.insert("app".into(), "web".into());
        p.spec.containers.push(Container {
            name: "web".into(),
            image: "registry.local/web:1.0".into(),
            command: vec!["serve".into()],
            cpu_milli: 500,
            memory_mb: 256,
            port: 8080,
            ..Default::default()
        });
        p.spec.restart_policy = "Always".into();
        p.status.phase = "Running".into();
        p.status.ready = true;
        p
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        assert_eq!(Pod::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn resource_requests_sum_containers() {
        let mut p = sample();
        p.spec.containers.push(Container { cpu_milli: 250, memory_mb: 128, ..Default::default() });
        assert_eq!(p.cpu_request(), 750);
        assert_eq!(p.memory_request(), 384);
    }

    #[test]
    fn negative_requests_clamped() {
        let mut p = sample();
        p.spec.containers[0].cpu_milli = -100; // corrupted value
        assert_eq!(p.cpu_request(), 0);
    }

    #[test]
    fn readiness_requires_running_phase() {
        let mut p = sample();
        assert!(p.is_ready());
        p.status.phase = "Pending".into();
        assert!(!p.is_ready());
        p.status.phase = "Running".into();
        p.status.ready = false;
        assert!(!p.is_ready());
    }

    #[test]
    fn tolerations() {
        let mut p = sample();
        assert!(!p.tolerates("node.kubernetes.io/unreachable", "NoExecute"));
        p.spec.tolerations.push(Toleration {
            key: "node.kubernetes.io/unreachable".into(),
            effect: "NoExecute".into(),
        });
        assert!(p.tolerates("node.kubernetes.io/unreachable", "NoExecute"));
        // Empty key tolerates any key with the same effect.
        p.spec.tolerations.clear();
        p.spec.tolerations.push(Toleration { key: String::new(), effect: "NoExecute".into() });
        assert!(p.tolerates("anything", "NoExecute"));
    }

    #[test]
    fn request_over_limit_is_detected() {
        let mut p = sample();
        assert!(!p.request_exceeds_limit(), "no explicit limit: request is the limit");
        p.spec.containers[0].cpu_limit_milli = 250; // below the 500m request
        assert!(p.spec.containers[0].request_exceeds_limit());
        assert!(p.request_exceeds_limit());
        p.spec.containers[0].cpu_limit_milli = 500; // limit == request is fine
        assert!(!p.request_exceeds_limit());
        p.spec.containers[0].memory_limit_mb = 128; // below the 256 MiB request
        assert!(p.request_exceeds_limit());
    }

    #[test]
    fn probe_window_needs_both_knobs() {
        let mut p = sample();
        assert_eq!(p.probe_window_ms(), None);
        p.spec.probe_period_seconds = 10;
        assert_eq!(p.probe_window_ms(), None, "threshold unset: default probing");
        p.spec.probe_failure_threshold = 3;
        assert_eq!(p.probe_window_ms(), Some(30_000));
        p.spec.probe_period_seconds = 1;
        p.spec.probe_failure_threshold = 1;
        assert_eq!(p.probe_window_ms(), Some(1_000));
    }

    #[test]
    fn injection_paths_resolve() {
        let p = sample();
        assert_eq!(p.get_field("spec.nodeName"), Some(Value::Str(String::new())));
        assert_eq!(
            p.get_field("spec.containers[0].image"),
            Some(Value::Str("registry.local/web:1.0".into()))
        );
        assert_eq!(p.get_field("status.podIP"), Some(Value::Str(String::new())));
        let mut p2 = p.clone();
        assert!(p2.set_field("spec.containers[0].image", Value::Str(String::new())));
        assert!(p2.spec.containers[0].image.is_empty());
    }
}
