//! Nodes: cluster machines, their capacity, taints and heartbeats.

use crate::meta::ObjectMeta;
use protowire::proto_message;

/// Taint effect that evicts running pods without a matching toleration
/// (used by the failover workload to simulate a node failure).
pub const TAINT_NO_EXECUTE: &str = "NoExecute";

/// Taint effect that only blocks new scheduling.
pub const TAINT_NO_SCHEDULE: &str = "NoSchedule";

/// Taint key applied by the node-lifecycle controller to unreachable nodes.
pub const TAINT_UNREACHABLE: &str = "node.kubernetes.io/unreachable";

proto_message! {
    /// Repels pods from a node unless they carry a matching toleration.
    pub struct Taint {
        1 => key: str,
        2 => value: str,
        3 => effect: str,
    }
}

proto_message! {
    /// Desired state of a node.
    pub struct NodeSpec {
        1 => unschedulable: bool,
        2 => taints: rep<Taint>,
        /// CIDR from which this node's pod IPs are drawn; the network
        /// manager programs inter-node routes from it (Reddit-style outage
        /// material when corrupted).
        3 => pod_cidr @ "podCIDR": str,
    }
}

proto_message! {
    /// Observed state of a node, reported via kubelet heartbeats.
    pub struct NodeStatus {
        1 => cpu_milli @ "allocatableCpuMilli": int,
        2 => memory_mb @ "allocatableMemoryMb": int,
        3 => ready: bool,
        /// Simulated time of the last accepted heartbeat. The
        /// node-lifecycle controller marks the node NotReady when this goes
        /// stale — corrupting the reporting path recreates the paper's
        /// Figure 2 cascade.
        4 => last_heartbeat @ "lastHeartbeatTime": int,
        5 => internal_ip @ "internalIP": str,
    }
}

proto_message! {
    /// A control-plane or worker machine in the cluster.
    pub struct Node {
        1 => metadata: msg<ObjectMeta>,
        2 => spec: msg<NodeSpec>,
        3 => status: msg<NodeStatus>,
    }
}

impl Node {
    /// Creates a schedulable worker node with the given capacity.
    pub fn worker(name: &str, cpu_milli: i64, memory_mb: i64) -> Node {
        let mut n = Node::default();
        n.metadata = ObjectMeta::named("", name);
        n.metadata.labels.insert("kubernetes.io/hostname".into(), name.to_owned());
        n.status.cpu_milli = cpu_milli;
        n.status.memory_mb = memory_mb;
        n.status.ready = true;
        n
    }

    /// True when a taint with `effect` exists.
    pub fn has_taint_effect(&self, effect: &str) -> bool {
        self.spec.taints.iter().any(|t| t.effect == effect)
    }

    /// Adds a taint if an identical key+effect is not already present.
    pub fn add_taint(&mut self, key: &str, effect: &str) {
        if !self.spec.taints.iter().any(|t| t.key == key && t.effect == effect) {
            self.spec.taints.push(Taint {
                key: key.to_owned(),
                value: String::new(),
                effect: effect.to_owned(),
            });
        }
    }

    /// Removes all taints with the given key.
    pub fn remove_taint(&mut self, key: &str) {
        self.spec.taints.retain(|t| t.key != key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protowire::reflect::{Reflect, Value};
    use protowire::Message;

    #[test]
    fn worker_constructor() {
        let n = Node::worker("worker-1", 8000, 4096);
        assert_eq!(n.metadata.name, "worker-1");
        assert!(n.status.ready);
        assert_eq!(n.status.cpu_milli, 8000);
    }

    #[test]
    fn roundtrip() {
        let mut n = Node::worker("worker-2", 8000, 4096);
        n.add_taint(TAINT_UNREACHABLE, TAINT_NO_EXECUTE);
        assert_eq!(Node::decode(&n.encode()).unwrap(), n);
    }

    #[test]
    fn taint_management_is_idempotent() {
        let mut n = Node::worker("w", 1, 1);
        n.add_taint("k", TAINT_NO_EXECUTE);
        n.add_taint("k", TAINT_NO_EXECUTE);
        assert_eq!(n.spec.taints.len(), 1);
        assert!(n.has_taint_effect(TAINT_NO_EXECUTE));
        n.remove_taint("k");
        assert!(!n.has_taint_effect(TAINT_NO_EXECUTE));
    }

    #[test]
    fn heartbeat_field_reachable_by_injection() {
        let mut n = Node::worker("w", 1, 1);
        n.status.last_heartbeat = 5000;
        assert_eq!(n.get_field("status.lastHeartbeatTime"), Some(Value::Int(5000)));
        assert!(n.set_field("status.ready", Value::Bool(false)));
        assert!(!n.status.ready);
    }
}
