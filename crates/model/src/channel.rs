//! Communication channels and the injection interceptor seam.
//!
//! The paper distinguishes two channel families (§IV-A): messages from the
//! Apiserver to Etcd (directly altering the stored cluster state, injected
//! *before* consensus so all replicas agree on the faulty value) and
//! messages from other components to the Apiserver (subject to
//! authentication/validation/admission, so corruption may be rejected).
//!
//! Every serialized write in the simulation flows through an
//! [`Interceptor`]; Mutiny implements it, and a [`NoopInterceptor`] serves
//! golden runs.

use crate::Kind;

/// The channel a message travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Channel {
    /// Apiserver → Etcd transactions (the campaign's primary target).
    ApiToEtcd,
    /// kube-controller-manager → Apiserver requests.
    KcmToApi,
    /// kube-scheduler → Apiserver requests (bindings).
    SchedulerToApi,
    /// kubelet → Apiserver requests (status, heartbeats).
    KubeletToApi,
    /// Cluster user (kbench) → Apiserver requests.
    UserToApi,
}

impl Channel {
    /// All channels in a stable order.
    pub const ALL: [Channel; 5] = [
        Channel::ApiToEtcd,
        Channel::KcmToApi,
        Channel::SchedulerToApi,
        Channel::KubeletToApi,
        Channel::UserToApi,
    ];

    /// Parses the [`Display`](std::fmt::Display) form back into a channel
    /// (the campaign TSV cache round-trips specs through it).
    pub fn parse(s: &str) -> Option<Channel> {
        Channel::ALL.into_iter().find(|c| c.to_string() == s)
    }
}

impl std::fmt::Display for Channel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Channel::ApiToEtcd => "apiserver->etcd",
            Channel::KcmToApi => "kcm->apiserver",
            Channel::SchedulerToApi => "scheduler->apiserver",
            Channel::KubeletToApi => "kubelet->apiserver",
            Channel::UserToApi => "user->apiserver",
        };
        f.write_str(s)
    }
}

/// The operation a message performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Creates a new resource instance.
    Create,
    /// Updates an existing resource instance.
    Update,
    /// Deletes a resource instance (no payload).
    Delete,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Op::Create => "create",
            Op::Update => "update",
            Op::Delete => "delete",
        };
        f.write_str(s)
    }
}

/// Context handed to the interceptor for every serialized message.
#[derive(Debug)]
pub struct MsgCtx<'a> {
    /// Channel the message travels on.
    pub channel: Channel,
    /// Resource kind the message concerns.
    pub kind: Kind,
    /// Registry key of the resource instance.
    pub key: &'a str,
    /// Operation being performed.
    pub op: Op,
    /// Serialized payload (`None` for deletes).
    pub bytes: Option<&'a [u8]>,
    /// Simulated time of the message.
    pub now: u64,
}

/// The interceptor's decision about a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireVerdict {
    /// Deliver the message unchanged.
    Pass,
    /// Deliver a tampered payload instead of the original.
    Replace(Vec<u8>),
    /// Silently drop the message (the sender sees success).
    Drop,
    /// Hold the message for the given number of simulated milliseconds,
    /// then deliver it unchanged (the sender sees success immediately —
    /// a retransmission/queueing delay, not a synchronous stall).
    Delay(u64),
    /// Deliver the message now **and** redeliver an identical copy after
    /// the given number of simulated milliseconds (a duplicated
    /// retransmission).
    Duplicate(u64),
}

/// A hook observing (and possibly tampering with) every serialized message.
///
/// Implementations must be deterministic: the campaign replays experiments
/// from seeds.
pub trait Interceptor {
    /// Inspects one message and decides its fate.
    fn on_message(&mut self, ctx: &MsgCtx<'_>) -> WireVerdict;
}

/// Pass-through interceptor used for golden runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopInterceptor;

impl Interceptor for NoopInterceptor {
    fn on_message(&mut self, _ctx: &MsgCtx<'_>) -> WireVerdict {
        WireVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_always_passes() {
        let mut n = NoopInterceptor;
        let ctx = MsgCtx {
            channel: Channel::ApiToEtcd,
            kind: Kind::Pod,
            key: "/registry/pods/default/p",
            op: Op::Create,
            bytes: Some(&[1, 2, 3]),
            now: 0,
        };
        assert_eq!(n.on_message(&ctx), WireVerdict::Pass);
    }

    #[test]
    fn channel_display_is_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Channel::ALL {
            assert!(seen.insert(c.to_string()));
        }
    }

    #[test]
    fn op_display() {
        assert_eq!(Op::Create.to_string(), "create");
        assert_eq!(Op::Update.to_string(), "update");
        assert_eq!(Op::Delete.to_string(), "delete");
    }
}
