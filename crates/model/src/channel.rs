//! Communication channels and the injection interceptor seam.
//!
//! The paper distinguishes two channel families (§IV-A): messages from the
//! Apiserver to Etcd (directly altering the stored cluster state, injected
//! *before* consensus so all replicas agree on the faulty value) and
//! messages from other components to the Apiserver (subject to
//! authentication/validation/admission, so corruption may be rejected).
//!
//! The channel taxonomy has two layers:
//!
//! * [`ChannelClass`] — the paper's stable five-way split. Table rows, the
//!   campaign TSV cache, and `MUTINY_*` filters key on its `Display`
//!   strings, which never change.
//! * [`ChannelId`] — a concrete wire: a class plus an optional node
//!   identity. Every kubelet registers its own id
//!   (`kubelet->apiserver@w1`), so interception, deferred delivery, and
//!   partitions can target a single node while cluster-wide components
//!   (kcm, scheduler, the user) keep class-wide ids. The apiserver, the
//!   fault interceptor, and the audit log route on [`ChannelId`].
//!
//! Every serialized write in the simulation flows through an
//! [`Interceptor`]; Mutiny implements it, and a [`NoopInterceptor`] serves
//! golden runs.

use crate::Kind;

/// The stable five-way channel taxonomy of the paper (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChannelClass {
    /// Apiserver → Etcd transactions (the campaign's primary target).
    ApiToEtcd,
    /// kube-controller-manager → Apiserver requests.
    KcmToApi,
    /// kube-scheduler → Apiserver requests (bindings).
    SchedulerToApi,
    /// kubelet → Apiserver requests (status, heartbeats).
    KubeletToApi,
    /// Cluster user (kbench) → Apiserver requests.
    UserToApi,
}

/// Back-compat name: most call sites only care about the class.
pub type Channel = ChannelClass;

impl ChannelClass {
    /// All channel classes in a stable order.
    pub const ALL: [ChannelClass; 5] = [
        ChannelClass::ApiToEtcd,
        ChannelClass::KcmToApi,
        ChannelClass::SchedulerToApi,
        ChannelClass::KubeletToApi,
        ChannelClass::UserToApi,
    ];

    /// Parses the [`Display`](std::fmt::Display) form back into a class
    /// (the campaign TSV cache round-trips specs through it).
    pub fn parse(s: &str) -> Option<ChannelClass> {
        ChannelClass::ALL.into_iter().find(|c| c.to_string() == s)
    }

    /// True when wires of this class carry a per-node identity (today:
    /// one kubelet per node).
    pub fn per_node(self) -> bool {
        self == ChannelClass::KubeletToApi
    }
}

impl std::fmt::Display for ChannelClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ChannelClass::ApiToEtcd => "apiserver->etcd",
            ChannelClass::KcmToApi => "kcm->apiserver",
            ChannelClass::SchedulerToApi => "scheduler->apiserver",
            ChannelClass::KubeletToApi => "kubelet->apiserver",
            ChannelClass::UserToApi => "user->apiserver",
        };
        f.write_str(s)
    }
}

/// An interned node name (node identities live for the program, like
/// registry handles, so channel ids stay `Copy`).
pub type NodeName = &'static str;

/// Interns a node name, returning a `'static` handle. The pool is global
/// and append-only; the node set of any simulation is small and bounded,
/// so the leak is deliberate (registry-style lifetime).
pub fn intern_node(name: &str) -> NodeName {
    use std::collections::HashSet;
    use std::sync::{Mutex, OnceLock};
    static POOL: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let mut pool = POOL
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("node name pool poisoned");
    match pool.get(name) {
        Some(interned) => interned,
        None => {
            let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
            pool.insert(leaked);
            leaked
        }
    }
}

/// A concrete wire: a [`ChannelClass`] plus an optional node identity.
///
/// `Display` renders class-wide ids exactly like the bare class (so every
/// pre-existing TSV cache key is unchanged) and node-scoped ids as
/// `<class>@<node>`; [`ChannelId::parse`] accepts both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId {
    /// The stable class this wire belongs to.
    pub class: ChannelClass,
    /// The node this wire is pinned to, when the class is per-node.
    pub node: Option<NodeName>,
}

impl ChannelId {
    /// A class-wide id (no node identity).
    pub const fn class_wide(class: ChannelClass) -> ChannelId {
        ChannelId { class, node: None }
    }

    /// A node-scoped id (the node name is interned).
    pub fn node_scoped(class: ChannelClass, node: &str) -> ChannelId {
        ChannelId { class, node: Some(intern_node(node)) }
    }

    /// The stable class of this wire.
    pub fn class(self) -> ChannelClass {
        self.class
    }

    /// The node identity, when this wire is node-scoped.
    pub fn node(self) -> Option<NodeName> {
        self.node
    }

    /// True when `observed` travels on a wire this id targets: the class
    /// must agree, and a node-scoped id additionally pins the node (a
    /// class-wide id matches every node's wire). This is the routing
    /// predicate of the fault interceptor — distinct from `==`, which is
    /// exact identity.
    pub fn matches(self, observed: ChannelId) -> bool {
        self.class == observed.class && (self.node.is_none() || self.node == observed.node)
    }

    /// Parses the `Display` form: `kubelet->apiserver` (class-wide, the
    /// historical cache format) or `kubelet->apiserver@w1` (node-scoped).
    /// A `@node` suffix is only valid on a [per-node
    /// class](ChannelClass::per_node) — a corrupted cache row like
    /// `apiserver->etcd@w1` is a parse failure, not a wire that can
    /// never match traffic (and no garbage suffix reaches the
    /// program-lifetime intern pool).
    pub fn parse(s: &str) -> Option<ChannelId> {
        match s.split_once('@') {
            Some((class, node)) if !node.is_empty() => {
                let class = ChannelClass::parse(class)?;
                class.per_node().then(|| ChannelId::node_scoped(class, node))
            }
            Some(_) => None,
            None => Some(ChannelId::class_wide(ChannelClass::parse(s)?)),
        }
    }
}

impl From<ChannelClass> for ChannelId {
    fn from(class: ChannelClass) -> ChannelId {
        ChannelId::class_wide(class)
    }
}

/// Class-only comparison: `id == ChannelClass::UserToApi` asks "is this a
/// user-channel wire?" regardless of node identity.
impl PartialEq<ChannelClass> for ChannelId {
    fn eq(&self, other: &ChannelClass) -> bool {
        self.class == *other
    }
}

impl PartialEq<ChannelId> for ChannelClass {
    fn eq(&self, other: &ChannelId) -> bool {
        *self == other.class
    }
}

impl std::fmt::Display for ChannelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.node {
            Some(node) => write!(f, "{}@{}", self.class, node),
            None => self.class.fmt(f),
        }
    }
}

/// The operation a message performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Creates a new resource instance.
    Create,
    /// Updates an existing resource instance.
    Update,
    /// Deletes a resource instance (no payload).
    Delete,
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Op::Create => "create",
            Op::Update => "update",
            Op::Delete => "delete",
        };
        f.write_str(s)
    }
}

/// Context handed to the interceptor for every serialized message.
#[derive(Debug)]
pub struct MsgCtx<'a> {
    /// The concrete wire the message travels on (class plus optional
    /// node identity).
    pub channel: ChannelId,
    /// Resource kind the message concerns.
    pub kind: Kind,
    /// Registry key of the resource instance.
    pub key: &'a str,
    /// Operation being performed.
    pub op: Op,
    /// Serialized payload (`None` for deletes).
    pub bytes: Option<&'a [u8]>,
    /// Simulated time of the message.
    pub now: u64,
}

/// Context handed to the interceptor for every admission review on a
/// component→apiserver channel (never `ApiToEtcd`: store writes have
/// already been admitted). Unlike [`MsgCtx`], the payload is the decoded
/// object, after built-in validation and before admission policies — the
/// seam where a config-defect fault mutates a *valid* spec in flight.
#[derive(Debug)]
pub struct AdmitCtx<'a> {
    /// The concrete wire the request arrived on.
    pub channel: ChannelId,
    /// Resource kind under review.
    pub kind: Kind,
    /// Registry key of the resource instance.
    pub key: &'a str,
    /// Operation being performed (`Create` or `Update`; deletes carry no
    /// spec to mutate).
    pub op: Op,
    /// Simulated time of the request.
    pub now: u64,
}

/// The interceptor's decision about a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireVerdict {
    /// Deliver the message unchanged.
    Pass,
    /// Deliver a tampered payload instead of the original.
    Replace(Vec<u8>),
    /// Silently drop the message (the sender sees success).
    Drop,
    /// Hold the message for the given number of simulated milliseconds,
    /// then deliver it unchanged (the sender sees success immediately —
    /// a retransmission/queueing delay, not a synchronous stall).
    Delay(u64),
    /// Deliver the message now **and** redeliver an identical copy after
    /// the given number of simulated milliseconds (a duplicated
    /// retransmission).
    Duplicate(u64),
}

/// A hook observing (and possibly tampering with) every serialized message.
///
/// Implementations must be deterministic: the campaign replays experiments
/// from seeds.
pub trait Interceptor {
    /// Inspects one message and decides its fate.
    fn on_message(&mut self, ctx: &MsgCtx<'_>) -> WireVerdict;

    /// Reviews a decoded object at admission time and may mutate it in
    /// place, returning `true` when it did. Runs after the apiserver's
    /// built-in validation and before admission policies, so a mutation
    /// lands exactly where a semantically-bad-but-well-formed spec would:
    /// past the parser and the syntax checks, in front of the
    /// controllers. The default reviews nothing.
    fn on_admission(&mut self, _ctx: &AdmitCtx<'_>, _obj: &mut crate::Object) -> bool {
        false
    }
}

/// Pass-through interceptor used for golden runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopInterceptor;

impl Interceptor for NoopInterceptor {
    fn on_message(&mut self, _ctx: &MsgCtx<'_>) -> WireVerdict {
        WireVerdict::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_always_passes() {
        let mut n = NoopInterceptor;
        let ctx = MsgCtx {
            channel: Channel::ApiToEtcd.into(),
            kind: Kind::Pod,
            key: "/registry/pods/default/p",
            op: Op::Create,
            bytes: Some(&[1, 2, 3]),
            now: 0,
        };
        assert_eq!(n.on_message(&ctx), WireVerdict::Pass);
    }

    #[test]
    fn channel_display_is_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for c in Channel::ALL {
            assert!(seen.insert(c.to_string()));
        }
    }

    #[test]
    fn class_display_and_parse_are_stable() {
        // The TSV cache and the tables key on these exact strings.
        for (class, expect) in [
            (ChannelClass::ApiToEtcd, "apiserver->etcd"),
            (ChannelClass::KcmToApi, "kcm->apiserver"),
            (ChannelClass::SchedulerToApi, "scheduler->apiserver"),
            (ChannelClass::KubeletToApi, "kubelet->apiserver"),
            (ChannelClass::UserToApi, "user->apiserver"),
        ] {
            assert_eq!(class.to_string(), expect);
            assert_eq!(ChannelClass::parse(expect), Some(class));
        }
    }

    #[test]
    fn channel_id_display_parse_roundtrip() {
        let wide = ChannelId::class_wide(ChannelClass::KubeletToApi);
        assert_eq!(wide.to_string(), "kubelet->apiserver");
        assert_eq!(ChannelId::parse("kubelet->apiserver"), Some(wide));

        let scoped = ChannelId::node_scoped(ChannelClass::KubeletToApi, "w3");
        assert_eq!(scoped.to_string(), "kubelet->apiserver@w3");
        assert_eq!(ChannelId::parse("kubelet->apiserver@w3"), Some(scoped));

        assert_eq!(ChannelId::parse("kubelet->apiserver@"), None);
        assert_eq!(ChannelId::parse("no-such-channel"), None);
        assert_eq!(ChannelId::parse("no-such-channel@w1"), None);
        // A node suffix on a class that is never per-node is corruption.
        assert_eq!(ChannelId::parse("apiserver->etcd@w1"), None);
        assert_eq!(ChannelId::parse("kcm->apiserver@w1"), None);
    }

    #[test]
    fn matching_is_class_wide_unless_node_scoped() {
        let wide: ChannelId = ChannelClass::KubeletToApi.into();
        let w1 = ChannelId::node_scoped(ChannelClass::KubeletToApi, "w1");
        let w2 = ChannelId::node_scoped(ChannelClass::KubeletToApi, "w2");
        // A class-wide target matches every node's wire.
        assert!(wide.matches(w1));
        assert!(wide.matches(w2));
        assert!(wide.matches(wide));
        // A node-scoped target pins its node.
        assert!(w1.matches(w1));
        assert!(!w1.matches(w2));
        assert!(!w1.matches(wide));
        // Classes never cross-match.
        assert!(!wide.matches(ChannelClass::KcmToApi.into()));
        // Class-only equality ignores the node, exact equality does not.
        assert_eq!(w1, ChannelClass::KubeletToApi);
        assert_ne!(w1, w2);
        assert_ne!(w1, wide);
    }

    #[test]
    fn interned_nodes_are_pointer_stable() {
        let a = intern_node("w1");
        let b = intern_node(&format!("w{}", 1));
        assert!(std::ptr::eq(a, b), "same name must intern to the same handle");
    }

    #[test]
    fn op_display() {
        assert_eq!(Op::Create.to_string(), "create");
        assert_eq!(Op::Update.to_string(), "update");
        assert_eq!(Op::Delete.to_string(), "delete");
    }
}
