//! Workload controllers' resources: ReplicaSet, Deployment, DaemonSet.
//!
//! These kinds carry the selector/template pairs whose corruption drives the
//! paper's most severe failure pattern (uncontrolled replication), plus the
//! `replicas` and `maxUnavailable`/`maxSurge` knobs exercised by the
//! More-/Less-Resources failure categories.

use crate::meta::ObjectMeta;
use crate::pod::PodSpec;
use crate::selector::LabelSelector;
use protowire::proto_message;

proto_message! {
    /// The pod template stamped onto every pod a controller creates.
    pub struct PodTemplateSpec {
        1 => metadata: msg<ObjectMeta>,
        2 => spec: msg<PodSpec>,
    }
}

proto_message! {
    /// Desired state of a ReplicaSet.
    pub struct RsSpec {
        1 => replicas: int,
        2 => selector: msg<LabelSelector>,
        3 => template: msg<PodTemplateSpec>,
    }
}

proto_message! {
    /// Observed state of a ReplicaSet.
    pub struct RsStatus {
        1 => replicas: int,
        2 => ready_replicas @ "readyReplicas": int,
        3 => observed_generation @ "observedGeneration": int,
    }
}

proto_message! {
    /// Ensures a desired number of pod replicas is running.
    pub struct ReplicaSet {
        1 => metadata: msg<ObjectMeta>,
        2 => spec: msg<RsSpec>,
        3 => status: msg<RsStatus>,
    }
}

proto_message! {
    /// Desired state of a Deployment.
    pub struct DeploymentSpec {
        1 => replicas: int,
        2 => selector: msg<LabelSelector>,
        3 => template: msg<PodTemplateSpec>,
        /// Maximum replicas allowed unavailable during a rolling update —
        /// one of the resiliency strategies the paper lists (§II-D).
        4 => max_unavailable @ "maxUnavailable": int,
        /// Maximum replicas allowed above desired during a rolling update.
        5 => max_surge @ "maxSurge": int,
        6 => paused: bool,
    }
}

proto_message! {
    /// Observed state of a Deployment.
    pub struct DeploymentStatus {
        1 => replicas: int,
        2 => ready_replicas @ "readyReplicas": int,
        3 => observed_generation @ "observedGeneration": int,
        4 => updated_replicas @ "updatedReplicas": int,
    }
}

proto_message! {
    /// Manages rolling updates and the replica count of ReplicaSets.
    pub struct Deployment {
        1 => metadata: msg<ObjectMeta>,
        2 => spec: msg<DeploymentSpec>,
        3 => status: msg<DeploymentStatus>,
    }
}

proto_message! {
    /// Desired state of a DaemonSet.
    pub struct DsSpec {
        1 => selector: msg<LabelSelector>,
        2 => template: msg<PodTemplateSpec>,
    }
}

proto_message! {
    /// Observed state of a DaemonSet.
    pub struct DsStatus {
        1 => desired @ "desiredNumberScheduled": int,
        2 => ready @ "numberReady": int,
        3 => observed_generation @ "observedGeneration": int,
    }
}

proto_message! {
    /// Spawns one pod on every node satisfying the constraints (used here
    /// for the network manager, as flannel is in the paper's testbed).
    pub struct DaemonSet {
        1 => metadata: msg<ObjectMeta>,
        2 => spec: msg<DsSpec>,
        3 => status: msg<DsStatus>,
    }
}

/// True when the selector matches the pod template's labels — the invariant
/// whose violation (post-validation, via injection) causes infinite pod
/// spawning. The apiserver validates it on the user channel; Mutiny's
/// injections on the store channel bypass that validation.
pub fn selector_matches_template(selector: &LabelSelector, template: &PodTemplateSpec) -> bool {
    selector.matches(&template.metadata.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use protowire::reflect::{Reflect, Value};
    use protowire::Message;

    fn rs() -> ReplicaSet {
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "web-rs");
        rs.spec.replicas = 2;
        rs.spec.selector = LabelSelector::eq("app", "web");
        rs.spec.template.metadata.labels.insert("app".into(), "web".into());
        rs
    }

    #[test]
    fn roundtrips() {
        let r = rs();
        assert_eq!(ReplicaSet::decode(&r.encode()).unwrap(), r);

        let mut d = Deployment::default();
        d.metadata = ObjectMeta::named("default", "web");
        d.spec.replicas = 3;
        d.spec.max_unavailable = 1;
        assert_eq!(Deployment::decode(&d.encode()).unwrap(), d);

        let mut ds = DaemonSet::default();
        ds.metadata = ObjectMeta::named("kube-system", "net-agent");
        ds.spec.selector = LabelSelector::eq("app", "net-agent");
        assert_eq!(DaemonSet::decode(&ds.encode()).unwrap(), ds);
    }

    #[test]
    fn selector_template_invariant() {
        let r = rs();
        assert!(selector_matches_template(&r.spec.selector, &r.spec.template));

        // One corrupted bit in the template label breaks the invariant.
        let mut bad = r.clone();
        bad.spec.template.metadata.labels.insert("app".into(), "wea".into());
        assert!(!selector_matches_template(&bad.spec.selector, &bad.spec.template));

        // An emptied selector also breaks it (empty matches nothing).
        let mut empty = r;
        empty.spec.selector.match_labels.clear();
        assert!(!selector_matches_template(&empty.spec.selector, &empty.spec.template));
    }

    #[test]
    fn replicas_reachable_by_injection_path() {
        let mut r = rs();
        // Bit 0 flip: 2 -> 3 (MoR); bit 4 flip: 2 -> 18 (severe MoR).
        assert!(r.set_field("spec.replicas", Value::Int(18)));
        assert_eq!(r.spec.replicas, 18);
        assert_eq!(r.get_field("spec.replicas"), Some(Value::Int(18)));
        assert_eq!(
            r.get_field("spec.selector.matchLabels['app']"),
            Some(Value::Str("web".into()))
        );
        assert_eq!(
            r.get_field("spec.template.metadata.labels['app']"),
            Some(Value::Str("web".into()))
        );
    }
}
