//! The dynamically typed [`Object`]: what the store and apiserver handle.

use crate::autoscale::HorizontalPodAutoscaler;
use crate::meta::ObjectMeta;
use crate::misc::{ConfigMap, Lease, Namespace};
use crate::node::Node;
use crate::pod::Pod;
use crate::service::{Endpoints, Service};
use crate::workloads::{DaemonSet, Deployment, ReplicaSet};
use crate::{registry_key, Kind};
use protowire::reflect::{Reflect, Value};
use protowire::{Message, WireError};

/// A resource instance of any [`Kind`].
///
/// The apiserver and etcd operate on `Object`s; controllers down-cast to the
/// typed structs. Encoding/decoding and reflection dispatch to the typed
/// implementations, so injections work uniformly across kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Object {
    /// A [`Pod`].
    Pod(Pod),
    /// A [`ReplicaSet`].
    ReplicaSet(ReplicaSet),
    /// A [`Deployment`].
    Deployment(Deployment),
    /// A [`DaemonSet`].
    DaemonSet(DaemonSet),
    /// A [`Service`].
    Service(Service),
    /// An [`Endpoints`].
    Endpoints(Endpoints),
    /// A [`Node`].
    Node(Node),
    /// A [`Namespace`].
    Namespace(Namespace),
    /// A [`ConfigMap`].
    ConfigMap(ConfigMap),
    /// A [`Lease`].
    Lease(Lease),
    /// A [`HorizontalPodAutoscaler`].
    HorizontalPodAutoscaler(HorizontalPodAutoscaler),
}

macro_rules! dispatch {
    ($self:expr, $o:ident => $body:expr) => {
        match $self {
            Object::Pod($o) => $body,
            Object::ReplicaSet($o) => $body,
            Object::Deployment($o) => $body,
            Object::DaemonSet($o) => $body,
            Object::Service($o) => $body,
            Object::Endpoints($o) => $body,
            Object::Node($o) => $body,
            Object::Namespace($o) => $body,
            Object::ConfigMap($o) => $body,
            Object::Lease($o) => $body,
            Object::HorizontalPodAutoscaler($o) => $body,
        }
    };
}

impl Object {
    /// The kind tag of this instance.
    pub fn kind(&self) -> Kind {
        match self {
            Object::Pod(_) => Kind::Pod,
            Object::ReplicaSet(_) => Kind::ReplicaSet,
            Object::Deployment(_) => Kind::Deployment,
            Object::DaemonSet(_) => Kind::DaemonSet,
            Object::Service(_) => Kind::Service,
            Object::Endpoints(_) => Kind::Endpoints,
            Object::Node(_) => Kind::Node,
            Object::Namespace(_) => Kind::Namespace,
            Object::ConfigMap(_) => Kind::ConfigMap,
            Object::Lease(_) => Kind::Lease,
            Object::HorizontalPodAutoscaler(_) => Kind::HorizontalPodAutoscaler,
        }
    }

    /// Shared metadata (every kind carries [`ObjectMeta`] as field 1).
    pub fn meta(&self) -> &ObjectMeta {
        dispatch!(self, o => &o.metadata)
    }

    /// Mutable shared metadata.
    pub fn meta_mut(&mut self) -> &mut ObjectMeta {
        dispatch!(self, o => &mut o.metadata)
    }

    /// Object name (shorthand for `meta().name`).
    pub fn name(&self) -> &str {
        &self.meta().name
    }

    /// Object namespace.
    pub fn namespace(&self) -> &str {
        &self.meta().namespace
    }

    /// The registry key where this object is stored.
    pub fn key(&self) -> String {
        registry_key(self.kind(), self.namespace(), self.name())
    }

    /// Writes the registry key into `buf` (cleared first) — the
    /// allocation-free twin of [`Object::key`] for hot lookup paths that
    /// only need a borrowed key.
    pub fn key_into(&self, buf: &mut String) {
        crate::registry_key_into(buf, self.kind(), self.namespace(), self.name());
    }

    /// Serializes the instance to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        dispatch!(self, o => Message::encode(o))
    }

    /// Serializes the instance into a shared, refcounted buffer.
    ///
    /// Byte-identical to [`Object::encode`], but staged in pooled scratch
    /// with one exactly-sized `Arc<[u8]>` allocation — the form the store
    /// commits without another copy (etcd_sim values are `Arc<[u8]>`).
    pub fn encode_shared(&self) -> std::sync::Arc<[u8]> {
        dispatch!(self, o => Message::encode_shared(o))
    }

    /// Decodes wire bytes as the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] when the bytes are undecodable — the condition
    /// under which the apiserver deletes the stored resource (§II-D).
    pub fn decode(kind: Kind, bytes: &[u8]) -> Result<Object, WireError> {
        Ok(match kind {
            Kind::Pod => Object::Pod(Pod::decode(bytes)?),
            Kind::ReplicaSet => Object::ReplicaSet(ReplicaSet::decode(bytes)?),
            Kind::Deployment => Object::Deployment(Deployment::decode(bytes)?),
            Kind::DaemonSet => Object::DaemonSet(DaemonSet::decode(bytes)?),
            Kind::Service => Object::Service(Service::decode(bytes)?),
            Kind::Endpoints => Object::Endpoints(Endpoints::decode(bytes)?),
            Kind::Node => Object::Node(Node::decode(bytes)?),
            Kind::Namespace => Object::Namespace(Namespace::decode(bytes)?),
            Kind::ConfigMap => Object::ConfigMap(ConfigMap::decode(bytes)?),
            Kind::Lease => Object::Lease(Lease::decode(bytes)?),
            Kind::HorizontalPodAutoscaler => {
                Object::HorizontalPodAutoscaler(HorizontalPodAutoscaler::decode(bytes)?)
            }
        })
    }

    /// Borrows the typed pod, if this is one.
    pub fn as_pod(&self) -> Option<&Pod> {
        match self {
            Object::Pod(p) => Some(p),
            _ => None,
        }
    }

    /// Mutable typed pod access.
    pub fn as_pod_mut(&mut self) -> Option<&mut Pod> {
        match self {
            Object::Pod(p) => Some(p),
            _ => None,
        }
    }
}

impl Reflect for Object {
    fn visit_fields(&self, prefix: &str, visit: &mut dyn FnMut(&str, Value)) {
        dispatch!(self, o => o.visit_fields(prefix, visit))
    }

    fn get_field(&self, path: &str) -> Option<Value> {
        dispatch!(self, o => o.get_field(path))
    }

    fn set_field(&mut self, path: &str, value: Value) -> bool {
        dispatch!(self, o => o.set_field(path, value))
    }
}

macro_rules! from_impls {
    ($($ty:ident),+) => {
        $(
            impl From<$ty> for Object {
                fn from(v: $ty) -> Object {
                    Object::$ty(v)
                }
            }
        )+
    };
}

from_impls!(
    Pod, ReplicaSet, Deployment, DaemonSet, Service, Endpoints, Node, Namespace, ConfigMap, Lease,
    HorizontalPodAutoscaler
);

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_each() -> Vec<Object> {
        let mut pod = Pod::default();
        pod.metadata = ObjectMeta::named("default", "p");
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named("default", "rs");
        rs.spec.replicas = 2;
        let mut dep = Deployment::default();
        dep.metadata = ObjectMeta::named("default", "d");
        let mut ds = DaemonSet::default();
        ds.metadata = ObjectMeta::named("kube-system", "ds");
        let mut svc = Service::default();
        svc.metadata = ObjectMeta::named("default", "s");
        let mut ep = Endpoints::default();
        ep.metadata = ObjectMeta::named("default", "s");
        let node = Node::worker("n", 8000, 4096);
        let mut ns = Namespace::default();
        ns.metadata = ObjectMeta::named("", "default");
        let mut cm = ConfigMap::default();
        cm.metadata = ObjectMeta::named("kube-system", "cm");
        let mut lease = Lease::default();
        lease.metadata = ObjectMeta::named("kube-system", "l");
        let mut hpa = HorizontalPodAutoscaler::default();
        hpa.metadata = ObjectMeta::named("default", "web-hpa");
        hpa.spec.scale_target = "web".into();
        hpa.spec.min_replicas = 1;
        hpa.spec.max_replicas = 4;
        vec![
            pod.into(),
            rs.into(),
            dep.into(),
            ds.into(),
            svc.into(),
            ep.into(),
            node.into(),
            ns.into(),
            cm.into(),
            lease.into(),
            hpa.into(),
        ]
    }

    #[test]
    fn encode_decode_all_kinds() {
        for obj in sample_each() {
            let bytes = obj.encode();
            let back = Object::decode(obj.kind(), &bytes).unwrap();
            assert_eq!(back, obj, "kind {}", obj.kind());
        }
    }

    #[test]
    fn keys_match_kind_scoping() {
        for obj in sample_each() {
            let key = obj.key();
            assert!(key.starts_with(&format!("/registry/{}/", obj.kind().plural())), "{key}");
        }
    }

    #[test]
    fn meta_mut_is_shared_across_kinds() {
        for mut obj in sample_each() {
            obj.meta_mut().uid = "u-1".into();
            assert_eq!(obj.meta().uid, "u-1");
        }
    }

    #[test]
    fn reflection_dispatches() {
        for obj in sample_each() {
            let fields = obj.field_list();
            assert!(!fields.is_empty());
            // metadata.name must be reachable on every kind.
            assert!(obj.get_field("metadata.name").is_some(), "kind {}", obj.kind());
        }
    }

    #[test]
    fn undecodable_bytes_error() {
        // A truncated buffer must error, not panic.
        let obj = sample_each().remove(0);
        let bytes = obj.encode();
        let res = Object::decode(Kind::Pod, &bytes[..bytes.len() - 1]);
        assert!(res.is_err());
    }

    #[test]
    fn pod_downcast() {
        let mut objs = sample_each();
        assert!(objs[0].as_pod().is_some());
        assert!(objs[0].as_pod_mut().is_some());
        assert!(objs[1].as_pod().is_none());
    }
}
