//! Name and value validation rules (the apiserver's "general validations").
//!
//! The paper's propagation study (§V-C4, Table VI) shows the apiserver
//! performs regex-style and border-case checks — catching malformed names
//! or out-of-range ports — but cannot catch *valid-but-wrong* values. These
//! functions implement exactly that class of checks.

/// True for a valid DNS-1123 label: lowercase alphanumerics and `-`,
/// starting and ending alphanumeric, at most 63 characters.
pub fn is_dns1123_label(s: &str) -> bool {
    if s.is_empty() || s.len() > 63 {
        return false;
    }
    let bytes = s.as_bytes();
    let ok_inner = |b: u8| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-';
    let ok_edge = |b: u8| b.is_ascii_lowercase() || b.is_ascii_digit();
    ok_edge(bytes[0]) && ok_edge(bytes[bytes.len() - 1]) && bytes.iter().all(|&b| ok_inner(b))
}

/// True for a valid DNS-1123 subdomain: dot-separated DNS-1123 labels,
/// at most 253 characters (the rule for object names).
pub fn is_dns1123_subdomain(s: &str) -> bool {
    !s.is_empty() && s.len() <= 253 && s.split('.').all(is_dns1123_label)
}

/// True for a valid label value: empty, or alphanumerics with `-`, `_`, `.`
/// in the middle, at most 63 characters.
pub fn is_label_value(s: &str) -> bool {
    if s.is_empty() {
        return true;
    }
    if s.len() > 63 {
        return false;
    }
    let bytes = s.as_bytes();
    let ok_inner =
        |b: u8| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.';
    let ok_edge = |b: u8| b.is_ascii_alphanumeric();
    ok_edge(bytes[0]) && ok_edge(bytes[bytes.len() - 1]) && bytes.iter().all(|&b| ok_inner(b))
}

/// True for a valid label key (optionally `prefix/name` with a DNS-style
/// prefix).
pub fn is_label_key(s: &str) -> bool {
    match s.split_once('/') {
        Some((prefix, name)) => {
            !prefix.is_empty()
                && prefix.len() <= 253
                && prefix.split('.').all(is_dns1123_label)
                && is_label_value_nonempty(name)
        }
        None => is_label_value_nonempty(s),
    }
}

fn is_label_value_nonempty(s: &str) -> bool {
    !s.is_empty() && is_label_value(s)
}

/// True for a TCP/UDP port in `1..=65535`.
pub fn is_valid_port(p: i64) -> bool {
    (1..=65535).contains(&p)
}

/// True for a plausible dotted-quad IPv4 address.
pub fn is_ipv4(s: &str) -> bool {
    let parts: Vec<&str> = s.split('.').collect();
    parts.len() == 4
        && parts.iter().all(|p| {
            !p.is_empty()
                && p.len() <= 3
                && p.bytes().all(|b| b.is_ascii_digit())
                && p.parse::<u16>().map(|v| v <= 255).unwrap_or(false)
                && !(p.len() > 1 && p.starts_with('0'))
        })
}

/// True for a plausible CIDR (`a.b.c.d/n`).
pub fn is_cidr(s: &str) -> bool {
    match s.split_once('/') {
        Some((ip, bits)) => is_ipv4(ip) && bits.parse::<u8>().map(|b| b <= 32).unwrap_or(false),
        None => false,
    }
}

/// True for a replica count the apiserver accepts (non-negative).
pub fn is_valid_replicas(r: i64) -> bool {
    r >= 0
}

/// True for a recognized restart policy.
pub fn is_restart_policy(s: &str) -> bool {
    matches!(s, "" | "Always" | "OnFailure" | "Never")
}

/// True for a recognized taint effect.
pub fn is_taint_effect(s: &str) -> bool {
    matches!(s, "NoExecute" | "NoSchedule" | "PreferNoSchedule")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dns_labels() {
        assert!(is_dns1123_label("web-1"));
        assert!(is_dns1123_label("a"));
        assert!(!is_dns1123_label(""));
        assert!(!is_dns1123_label("-web"));
        assert!(!is_dns1123_label("web-"));
        assert!(!is_dns1123_label("Web"));
        assert!(!is_dns1123_label("we_b"));
        assert!(!is_dns1123_label(&"a".repeat(64)));
    }

    #[test]
    fn label_values() {
        assert!(is_label_value(""));
        assert!(is_label_value("web"));
        assert!(is_label_value("Web_1.x"));
        assert!(!is_label_value("-web"));
        assert!(!is_label_value("web "));
    }

    #[test]
    fn label_keys() {
        assert!(is_label_key("app"));
        assert!(is_label_key("kubernetes.io/hostname"));
        assert!(!is_label_key(""));
        assert!(!is_label_key("/name"));
        assert!(!is_label_key("UPPER/name"));
    }

    #[test]
    fn ports() {
        assert!(is_valid_port(80));
        assert!(is_valid_port(65535));
        assert!(!is_valid_port(0));
        assert!(!is_valid_port(-1));
        assert!(!is_valid_port(65536));
        // Bit-4 flip of port 80 -> 64: still valid, still wrong. The class
        // of error validation cannot catch (F4/Table VI).
        assert!(is_valid_port(80 ^ 16));
    }

    #[test]
    fn ipv4_and_cidr() {
        assert!(is_ipv4("10.96.0.10"));
        assert!(!is_ipv4("10.96.0"));
        assert!(!is_ipv4("10.96.0.256"));
        assert!(!is_ipv4("10.96.0.01"));
        assert!(!is_ipv4("ten.a.b.c"));
        assert!(is_cidr("10.244.1.0/24"));
        assert!(!is_cidr("10.244.1.0"));
        assert!(!is_cidr("10.244.1.0/33"));
    }

    #[test]
    fn enums_and_replicas() {
        assert!(is_restart_policy("Always"));
        assert!(!is_restart_policy("Alwayt")); // one corrupted bit
        assert!(is_taint_effect("NoExecute"));
        assert!(!is_taint_effect("noexecute"));
        assert!(is_valid_replicas(0));
        assert!(!is_valid_replicas(-3));
    }
}
