//! # k8s-model — the Kubernetes-like resource model
//!
//! Typed resource kinds (Pod, ReplicaSet, Deployment, DaemonSet, Service,
//! Endpoints, Node, Namespace, ConfigMap, Lease) with:
//!
//! * Protobuf wire round-tripping via [`protowire::Message`] — every state
//!   transition in the simulated cluster crosses real serialized bytes, so
//!   Mutiny's injections behave exactly like the paper's;
//! * field reflection via [`protowire::reflect::Reflect`] — the campaign
//!   enumerates recorded fields and mutates them by path;
//! * the dependency-tracking metadata the paper identifies as the dominant
//!   cause of critical failures (F2): labels, label selectors and
//!   ownerReferences;
//! * the [`Channel`]/[`Interceptor`] abstraction — the seam where Mutiny
//!   tampers with messages in flight.
//!
//! ```
//! use k8s_model::{Kind, Object, Pod};
//!
//! let mut pod = Pod::default();
//! pod.metadata.name = "web-0".into();
//! pod.metadata.namespace = "default".into();
//! pod.spec.node_name = "worker-1".into();
//! let obj = Object::Pod(pod);
//! let bytes = obj.encode();
//! let back = Object::decode(Kind::Pod, &bytes).unwrap();
//! assert_eq!(back.meta().name, "web-0");
//! assert_eq!(back.key(), "/registry/pods/default/web-0");
//! ```

pub mod autoscale;
pub mod channel;
pub mod meta;
pub mod misc;
pub mod node;
pub mod object;
pub mod pod;
pub mod selector;
pub mod service;
pub mod validate;
pub mod workloads;

pub use autoscale::{HorizontalPodAutoscaler, HpaSpec, HpaStatus};
pub use channel::{
    intern_node, AdmitCtx, Channel, ChannelClass, ChannelId, Interceptor, MsgCtx, NodeName,
    NoopInterceptor, Op, WireVerdict,
};
pub use meta::{ObjectMeta, OwnerReference};
pub use misc::{ConfigMap, Lease, LeaseSpec, Namespace};
pub use node::{Node, NodeSpec, NodeStatus, Taint};
pub use object::Object;
pub use pod::{Container, Pod, PodSpec, PodStatus, Toleration};
pub use selector::LabelSelector;
pub use service::{EndpointAddress, Endpoints, Service, ServiceSpec};
pub use workloads::{
    DaemonSet, Deployment, DeploymentSpec, DeploymentStatus, DsSpec, DsStatus, PodTemplateSpec,
    ReplicaSet, RsSpec, RsStatus,
};

/// Priority of pods created by DaemonSets that run system agents; such pods
/// preempt any application pod (the paper's uncontrolled-replication example
/// turns into an Outage precisely because of this priority).
pub const SYSTEM_NODE_CRITICAL: i64 = 2_000_001_000;

/// Priority of cluster-critical control-plane pods (coreDNS).
pub const SYSTEM_CLUSTER_CRITICAL: i64 = 2_000_000_000;

/// Annotation set by the replication circuit breaker to suspend a workload
/// controller whose children are being created uncontrollably (§VI-B:
/// "circuit breakers must be systematically designed to cover all the
/// resource kinds that can cause overload errors"). Controllers skip
/// reconciliation while the annotation value is `"true"`.
pub const SUSPEND_ANNOTATION: &str = "mutiny.io/suspended";

/// Annotation carrying the redundancy code over an object's critical
/// fields (§VI-B: "simple data redundancy mechanisms, like redundancy
/// codes on critical fields, can protect the cluster from hardware faults
/// with a negligible overhead").
pub const INTEGRITY_ANNOTATION: &str = "mutiny.io/critical-crc";

/// True while an object is suspended by the replication circuit breaker.
pub fn is_suspended(meta: &ObjectMeta) -> bool {
    meta.annotations.get(SUSPEND_ANNOTATION).map(String::as_str) == Some("true")
}

/// The resource kinds handled by the simulated orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Kind {
    /// A set of containers in an isolated environment.
    Pod,
    /// Maintains a desired number of pod replicas.
    ReplicaSet,
    /// Manages rolling updates of a ReplicaSet.
    Deployment,
    /// Spawns one pod on every eligible node.
    DaemonSet,
    /// A stable virtual endpoint load-balancing over selected pods.
    Service,
    /// The resolved backend addresses of a Service.
    Endpoints,
    /// A control-plane or worker machine.
    Node,
    /// A named isolation scope for other resources.
    Namespace,
    /// Plain configuration data (used by the network manager).
    ConfigMap,
    /// Leader-election and heartbeat lease.
    Lease,
    /// Scales a Deployment from a published load metric.
    HorizontalPodAutoscaler,
}

impl Kind {
    /// All kinds, in registry order.
    pub const ALL: [Kind; 11] = [
        Kind::Pod,
        Kind::ReplicaSet,
        Kind::Deployment,
        Kind::DaemonSet,
        Kind::Service,
        Kind::Endpoints,
        Kind::Node,
        Kind::Namespace,
        Kind::ConfigMap,
        Kind::Lease,
        Kind::HorizontalPodAutoscaler,
    ];

    /// Lower-case plural used in registry keys, e.g. `pods`.
    pub fn plural(self) -> &'static str {
        match self {
            Kind::Pod => "pods",
            Kind::ReplicaSet => "replicasets",
            Kind::Deployment => "deployments",
            Kind::DaemonSet => "daemonsets",
            Kind::Service => "services",
            Kind::Endpoints => "endpoints",
            Kind::Node => "nodes",
            Kind::Namespace => "namespaces",
            Kind::ConfigMap => "configmaps",
            Kind::Lease => "leases",
            Kind::HorizontalPodAutoscaler => "horizontalpodautoscalers",
        }
    }

    /// True for cluster-scoped kinds (no namespace in their key).
    pub fn cluster_scoped(self) -> bool {
        matches!(self, Kind::Node | Kind::Namespace)
    }

    /// Parses the CamelCase kind name.
    pub fn parse(s: &str) -> Option<Kind> {
        Kind::ALL.iter().copied().find(|k| k.to_string() == s)
    }
}

impl std::fmt::Display for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Kind::Pod => "Pod",
            Kind::ReplicaSet => "ReplicaSet",
            Kind::Deployment => "Deployment",
            Kind::DaemonSet => "DaemonSet",
            Kind::Service => "Service",
            Kind::Endpoints => "Endpoints",
            Kind::Node => "Node",
            Kind::Namespace => "Namespace",
            Kind::ConfigMap => "ConfigMap",
            Kind::Lease => "Lease",
            Kind::HorizontalPodAutoscaler => "HorizontalPodAutoscaler",
        };
        f.write_str(s)
    }
}

/// Builds the registry (etcd) key for an object.
///
/// Namespaced kinds use `/registry/<plural>/<namespace>/<name>`;
/// cluster-scoped kinds omit the namespace segment.
pub fn registry_key(kind: Kind, namespace: &str, name: &str) -> String {
    if kind.cluster_scoped() {
        format!("/registry/{}/{}", kind.plural(), name)
    } else {
        format!("/registry/{}/{}/{}", kind.plural(), namespace, name)
    }
}

/// Key prefix covering every instance of `kind` (optionally one namespace).
pub fn registry_prefix(kind: Kind, namespace: Option<&str>) -> String {
    match namespace {
        Some(ns) if !kind.cluster_scoped() => format!("/registry/{}/{}/", kind.plural(), ns),
        _ => format!("/registry/{}/", kind.plural()),
    }
}

/// Writes the registry key for an object into `buf` (cleared first).
///
/// The allocation-free twin of [`registry_key`] for hot paths that look a
/// key up without storing it: the apiserver's per-request get/watch-cache
/// probes reuse one scratch `String` instead of allocating per call.
pub fn registry_key_into(buf: &mut String, kind: Kind, namespace: &str, name: &str) {
    use std::fmt::Write as _;
    buf.clear();
    if kind.cluster_scoped() {
        let _ = write!(buf, "/registry/{}/{}", kind.plural(), name);
    } else {
        let _ = write!(buf, "/registry/{}/{}/{}", kind.plural(), namespace, name);
    }
}

/// Writes the prefix of [`registry_prefix`] into `buf` (cleared first).
pub fn registry_prefix_into(buf: &mut String, kind: Kind, namespace: Option<&str>) {
    use std::fmt::Write as _;
    buf.clear();
    match namespace {
        Some(ns) if !kind.cluster_scoped() => {
            let _ = write!(buf, "/registry/{}/{}/", kind.plural(), ns);
        }
        _ => {
            let _ = write!(buf, "/registry/{}/", kind.plural());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display_and_parse_roundtrip() {
        for k in Kind::ALL {
            assert_eq!(Kind::parse(&k.to_string()), Some(k));
        }
        assert_eq!(Kind::parse("NotAKind"), None);
    }

    #[test]
    fn registry_keys() {
        assert_eq!(registry_key(Kind::Pod, "default", "web-0"), "/registry/pods/default/web-0");
        assert_eq!(registry_key(Kind::Node, "ignored", "worker-1"), "/registry/nodes/worker-1");
    }

    #[test]
    fn scratch_key_variants_match_the_allocating_ones() {
        let mut buf = String::from("stale contents");
        for k in Kind::ALL {
            registry_key_into(&mut buf, k, "default", "web-0");
            assert_eq!(buf, registry_key(k, "default", "web-0"));
            for ns in [Some("default"), None] {
                registry_prefix_into(&mut buf, k, ns);
                assert_eq!(buf, registry_prefix(k, ns));
            }
        }
    }

    #[test]
    fn registry_prefixes() {
        assert_eq!(registry_prefix(Kind::Pod, Some("default")), "/registry/pods/default/");
        assert_eq!(registry_prefix(Kind::Pod, None), "/registry/pods/");
        assert_eq!(registry_prefix(Kind::Node, Some("x")), "/registry/nodes/");
    }

    #[test]
    fn plural_names_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for k in Kind::ALL {
            assert!(seen.insert(k.plural()));
        }
    }
}
