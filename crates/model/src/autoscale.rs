//! The HorizontalPodAutoscaler: scales a Deployment from observed load.
//!
//! The paper's fault taxonomy (Table I(a)) lists *Wrong Autoscale Trigger* —
//! "autoscaling of Pods or Nodes based on misleading information" — among
//! the real-world fault classes, and the GKE incident of Figure 2 is an
//! autoscaler acting on corrupted health data. This kind provides the
//! target for those experiments: the controller reads a load metric
//! published by the network fabric and reconciles the target Deployment's
//! replica count, so a single corrupted metric or spec value mis-sizes a
//! service (MoR/LeR) or, at the extremes, storms the control plane.

use crate::meta::ObjectMeta;
use protowire::proto_message;

proto_message! {
    /// Desired autoscaling behaviour.
    pub struct HpaSpec {
        /// Name of the target Deployment (same namespace).
        1 => scale_target @ "scaleTargetRef": str,
        /// Lower replica bound (at least 1; 0 would scale the service away).
        2 => min_replicas @ "minReplicas": int,
        /// Upper replica bound.
        3 => max_replicas @ "maxReplicas": int,
        /// Per-replica load (requests/second) the controller aims for.
        4 => target_load @ "targetLoadPerReplica": int,
    }
}

proto_message! {
    /// Observed autoscaling state.
    pub struct HpaStatus {
        1 => current_replicas @ "currentReplicas": int,
        2 => desired_replicas @ "desiredReplicas": int,
        /// Simulated time of the last scale action.
        3 => last_scale_time @ "lastScaleTime": int,
        /// Load observed at the last reconcile (requests/second).
        4 => observed_load @ "observedLoad": int,
    }
}

proto_message! {
    /// Scales a Deployment horizontally from a published load metric.
    pub struct HorizontalPodAutoscaler {
        1 => metadata: msg<ObjectMeta>,
        2 => spec: msg<HpaSpec>,
        3 => status: msg<HpaStatus>,
    }
}

impl HorizontalPodAutoscaler {
    /// Replica count the spec demands for an observed `load`, before any
    /// stabilization: `ceil(load / targetLoadPerReplica)` clamped to
    /// `[minReplicas, maxReplicas]`.
    ///
    /// Corrupted inputs degrade safely: a non-positive `target_load` pins
    /// the answer to `min_replicas` (scaling on garbage would otherwise
    /// divide by zero), and inverted bounds collapse to `min_replicas`.
    pub fn desired_for(&self, load: i64) -> i64 {
        let min = self.spec.min_replicas.max(1);
        let max = self.spec.max_replicas.max(min);
        if self.spec.target_load <= 0 {
            return min;
        }
        let load = load.max(0);
        let raw = (load + self.spec.target_load - 1) / self.spec.target_load;
        raw.clamp(min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protowire::reflect::{Reflect, Value};
    use protowire::Message;

    fn hpa(min: i64, max: i64, target: i64) -> HorizontalPodAutoscaler {
        let mut h = HorizontalPodAutoscaler::default();
        h.metadata = ObjectMeta::named("default", "web-1-hpa");
        h.spec.scale_target = "web-1".into();
        h.spec.min_replicas = min;
        h.spec.max_replicas = max;
        h.spec.target_load = target;
        h
    }

    #[test]
    fn roundtrips() {
        let mut h = hpa(2, 8, 10);
        h.status.current_replicas = 2;
        h.status.observed_load = 37;
        assert_eq!(HorizontalPodAutoscaler::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn desired_follows_ceiling_division() {
        let h = hpa(1, 10, 10);
        assert_eq!(h.desired_for(0), 1);
        assert_eq!(h.desired_for(10), 1);
        assert_eq!(h.desired_for(11), 2);
        assert_eq!(h.desired_for(95), 10);
        assert_eq!(h.desired_for(1000), 10); // clamped at max
    }

    #[test]
    fn clamps_to_bounds() {
        let h = hpa(3, 5, 10);
        assert_eq!(h.desired_for(1), 3);
        assert_eq!(h.desired_for(100), 5);
    }

    #[test]
    fn corrupted_target_load_degrades_to_min() {
        // A zeroed metric target (the data-type-set injection) must not
        // divide by zero or storm to max.
        let mut h = hpa(2, 8, 10);
        h.spec.target_load = 0;
        assert_eq!(h.desired_for(50), 2);
        h.spec.target_load = -4; // bit-flipped sign
        assert_eq!(h.desired_for(50), 2);
    }

    #[test]
    fn inverted_bounds_collapse_to_min() {
        let mut h = hpa(6, 2, 10);
        h.spec.max_replicas = 2;
        assert_eq!(h.desired_for(100), 6);
    }

    #[test]
    fn fields_reachable_by_injection_path() {
        let mut h = hpa(2, 8, 10);
        assert_eq!(h.get_field("spec.maxReplicas"), Some(Value::Int(8)));
        assert!(h.set_field("spec.targetLoadPerReplica", Value::Int(1)));
        assert_eq!(h.spec.target_load, 1);
        assert_eq!(
            h.get_field("spec.scaleTargetRef"),
            Some(Value::Str("web-1".into()))
        );
    }
}
