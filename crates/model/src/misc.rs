//! Namespaces, ConfigMaps and Leases.

use crate::meta::ObjectMeta;
use protowire::proto_message;

proto_message! {
    /// A named isolation scope; deleting one cascades to its contents
    /// (an erroneous namespace deletion is one of the real-world Outage
    /// causes in the paper's FFDA).
    pub struct Namespace {
        1 => metadata: msg<ObjectMeta>,
        /// `Active` or `Terminating`.
        2 => phase: str,
    }
}

proto_message! {
    /// Plain configuration data. The simulated network manager reads its
    /// overlay configuration from a ConfigMap, mirroring flannel.
    pub struct ConfigMap {
        1 => metadata: msg<ObjectMeta>,
        2 => data: map,
    }
}

proto_message! {
    /// Spec of a coordination lease.
    pub struct LeaseSpec {
        /// Identity of the current holder (e.g. `kcm-0`).
        1 => holder @ "holderIdentity": str,
        2 => lease_duration_ms @ "leaseDurationMs": int,
        /// Simulated time of the last renewal.
        3 => renew_time @ "renewTime": int,
    }
}

proto_message! {
    /// Leader-election lease used by the Kcm and the Scheduler: only one
    /// replica is active at a time (§II-D); losing the lease costs a
    /// re-election delay, the mechanism behind the paper's 20-second
    /// scheduler-restart Timing failures.
    pub struct Lease {
        1 => metadata: msg<ObjectMeta>,
        2 => spec: msg<LeaseSpec>,
    }
}

impl Lease {
    /// True when the lease has expired at time `now`.
    pub fn expired(&self, now: u64) -> bool {
        let renew = self.spec.renew_time.max(0) as u64;
        let dur = self.spec.lease_duration_ms.max(0) as u64;
        renew + dur <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protowire::Message;

    #[test]
    fn roundtrips() {
        let mut ns = Namespace::default();
        ns.metadata = ObjectMeta::named("", "default");
        ns.phase = "Active".into();
        assert_eq!(Namespace::decode(&ns.encode()).unwrap(), ns);

        let mut cm = ConfigMap::default();
        cm.metadata = ObjectMeta::named("kube-system", "net-conf");
        cm.data.insert("overlay".into(), "vxlan".into());
        assert_eq!(ConfigMap::decode(&cm.encode()).unwrap(), cm);

        let mut l = Lease::default();
        l.metadata = ObjectMeta::named("kube-system", "kcm-leader");
        l.spec.holder = "kcm-0".into();
        l.spec.lease_duration_ms = 15_000;
        l.spec.renew_time = 1_000;
        assert_eq!(Lease::decode(&l.encode()).unwrap(), l);
    }

    #[test]
    fn lease_expiry() {
        let mut l = Lease::default();
        l.spec.lease_duration_ms = 15_000;
        l.spec.renew_time = 10_000;
        assert!(!l.expired(20_000));
        assert!(l.expired(25_000));
        assert!(l.expired(25_001));
    }

    #[test]
    fn corrupted_negative_lease_fields_read_as_expired() {
        let mut l = Lease::default();
        l.spec.lease_duration_ms = -5; // corrupted
        l.spec.renew_time = 10_000;
        assert!(l.expired(10_000));
    }
}
