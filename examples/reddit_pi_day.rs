//! Inspired by the Reddit Pi-Day outage the paper discusses (§II-B, §VI):
//! a node-relabeling change broke the selectors of the network
//! infrastructure, taking down cluster networking for 314 minutes. Here
//! the stored network-manager DaemonSet's selector is corrupted directly
//! in the store: the controller releases every running agent pod and
//! respawns node-critical pods forever; the released agents keep serving
//! until the storm's preemption kills them, after which routes rot and
//! the cluster network fails.
//!
//! ```text
//! cargo run --release --example reddit_pi_day
//! ```

use k8s_cluster::{ClusterConfig, World};
use mutiny_scenarios::DEPLOY;
use k8s_model::{Channel, Kind, NoopInterceptor, Object};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let cfg = ClusterConfig { seed: 314, ..Default::default() };
    let mut world = World::new(cfg, Rc::new(RefCell::new(NoopInterceptor)));
    world.prepare(DEPLOY.preinstalled_apps());

    // The "relabeling": the net-agent DaemonSet selector now matches a
    // label no pod carries. (A direct store write models the corruption
    // landing post-validation, as Mutiny's ApiToEtcd injections do.)
    if let Some(Object::DaemonSet(ds)) = world.api.get(Kind::DaemonSet, "kube-system", "net-agent").as_deref() {
        let mut ds = ds.clone();
        ds.spec.selector.match_labels.insert("app".into(), "net-agent-renamed".into());
        world.api.update(Channel::ApiToEtcd, Object::DaemonSet(ds)).unwrap();
        println!("corrupted net-agent DaemonSet selector in the store");
    }

    world.schedule_ops(DEPLOY.ops());
    world.run_to_horizon();

    let last = world.stats.last_sample().unwrap();
    println!("\nat the end of the observation window:");
    println!("  net agents down: {}/{} nodes", last.netagents_down, last.net_nodes);
    println!("  pods created by controllers: {}", last.pods_created_cum);
    println!("  agent pods released by the controller: {}", world.kcm.metrics.orphaned);
    println!("  etcd stalled: {}", last.etcd_stalled);
    println!(
        "  client outcomes: ok={} refused={} timeouts={}",
        world.net.metrics.ok, world.net.metrics.refused, world.net.metrics.timeouts
    );
    let baseline = mutiny_core::campaign::cached_default_baseline(DEPLOY);
    let of = mutiny_core::classify::classify_orchestrator(&world.stats, &baseline);
    let (cf, z) = mutiny_core::classify::classify_client(&world.stats, &baseline);
    println!("  classification: orchestrator {of}, client {cf} (z = {z:.1})");
}
