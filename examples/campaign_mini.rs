//! A miniature end-to-end campaign: record fields during a nominal
//! "deploy" workload, generate the §IV-C injection plan, execute a
//! subsample, and print Table IV/V-style statistics. The full campaign
//! lives in `cargo bench` (see crates/bench).
//!
//! ```text
//! cargo run --release --example campaign_mini [experiments]
//! ```

use k8s_cluster::ClusterConfig;
use k8s_model::Channel;
use mutiny_scenarios::DEPLOY;
use mutiny_core::campaign as camp;
use std::collections::HashMap;

fn main() {
    let budget: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(150);
    let cluster = ClusterConfig::default();

    println!("phase 1 — recording fields during a nominal deploy workload…");
    let traffic = camp::record_fields(&cluster, DEPLOY, vec![Channel::ApiToEtcd], 5);
    println!(
        "  recorded {} fields across {} kinds ({} node wires)",
        traffic.fields.len(),
        traffic.kinds.len(),
        traffic.nodes().len()
    );

    println!("phase 2 — generating the injection plan (§IV-C rules)…");
    let mut rng = simkit::Rng::new(9);
    let plan = camp::generate_plan(&traffic, DEPLOY, &mut rng);
    let keep = (plan.len() / budget.max(1)).max(1);
    let sub: Vec<_> =
        plan.iter().enumerate().filter(|(i, _)| i % keep == 0).map(|(_, p)| p.clone()).collect();
    println!("  plan: {} experiments; running {}", plan.len(), sub.len());

    println!("phase 3 — golden baseline (12 runs) and campaign execution…");
    let baseline = mutiny_core::golden::build_baseline(&cluster, DEPLOY, 12, 1);
    let mut baselines = HashMap::new();
    baselines.insert(DEPLOY, baseline);
    let t = std::time::Instant::now();
    let results = camp::run_campaign(&cluster, &sub, &baselines, 77);
    println!("  done in {:?}\n", t.elapsed());

    println!("{}", mutiny_core::tables::table4(&results).render());
    println!("{}", mutiny_core::tables::table5(&results).render());
    println!("{}", mutiny_core::tables::summary_counts(&results));
    println!("\n{}", mutiny_core::findings::render_findings(&results));
}
