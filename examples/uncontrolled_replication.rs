//! The paper's flagship failure (§V-C1): a single-bit corruption of the
//! labels that associate pods with their controller leaves the controller
//! unable to identify its pods, so it spawns new ones in an infinite
//! loop. Here the stored ReplicaSet's pod-template label is corrupted in
//! the apiserver→etcd transaction (post-validation), and every pod the
//! controller creates is immediately released and replaced.
//!
//! ```text
//! cargo run --release --example uncontrolled_replication
//! ```

use mutiny_lab::prelude::*;

fn main() {
    let spec = InjectionSpec {
        channel: Channel::ApiToEtcd.into(),
        kind: Kind::ReplicaSet,
        point: InjectionPoint::Field {
            path: "spec.template.metadata.labels['app']".into(),
            // 'w' ^ 1 = 'v': "web-2" → "veb-2", selector no longer matches.
            mutation: FieldMutation::FlipStringChar(0),
        },
        occurrence: 1, // the ReplicaSet's create transaction
    };
    let cfg = ExperimentConfig::injected(DEPLOY, 7, spec);
    let (world, record) = mutiny_core::campaign::run_world(&cfg);

    println!("injection: {:?}", record.map(|r| (r.at, r.key, r.before, r.after)));
    println!("\npods created over time (sampled every 3 s):");
    for s in world.stats.samples.iter().step_by(5) {
        println!(
            "  t={:>6} ms  pods_created={:<5} pods_total={:<5} etcd stalled={} released={}",
            s.at, s.pods_created_cum, s.pods_total, s.etcd_stalled, world.kcm.metrics.orphaned
        );
    }
    println!("\nkcm metrics: {:?}", world.kcm.metrics);
    println!(
        "etcd: {} objects, {} writes rejected (disk {})",
        world.api.etcd().object_count(),
        world.api.etcd().writes_rejected(),
        if world.api.etcd().is_stalled() { "FULL — store stalled" } else { "ok" }
    );
    let baseline = mutiny_core::campaign::cached_default_baseline(DEPLOY);
    let of = mutiny_core::classify::classify_orchestrator(&world.stats, &baseline);
    println!("orchestrator-level classification: {of} (expected Sta: uncontrolled pod spawn)");
}
