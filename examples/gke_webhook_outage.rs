//! The paper's Figure 2: an intermittent apiserver (caused by a webhook
//! timeout in the real GKE incident) prevents kubelets from reporting
//! node health; nodes are declared NotReady and the eviction machinery
//! deletes healthy workloads. Kubernetes' *full disruption mode* exists
//! precisely to stop this cascade: when ALL nodes look unhealthy, the
//! fault is probably in the reporting path, so evictions are suspended.
//!
//! We reproduce three arms: with full disruption mode (default) the
//! cluster rides the blackout out; without it, the cascade evicts every
//! application pod; and with a GKE-style **node auto-repair loop** the
//! cloud keeps deleting and recreating "unhealthy" nodes — the paper's
//! "massive Node deletion and recreation by the GKE autoscaler, even if
//! the Nodes were correctly running the applications" — which full
//! disruption mode cannot stop (it suspends evictions, not the cloud).
//!
//! ```text
//! cargo run --release --example gke_webhook_outage
//! ```

use k8s_cluster::{ClusterConfig, NodeRepairConfig, World};
use mutiny_scenarios::DEPLOY;
use k8s_model::NoopInterceptor;
use std::cell::RefCell;
use std::rc::Rc;

fn run(full_disruption_mode: bool, auto_repair: bool) {
    let mut cfg = ClusterConfig { seed: 99, ..Default::default() };
    cfg.kcm.full_disruption_mode = full_disruption_mode;
    cfg.kcm.node_grace_ms = 15_000;
    if auto_repair {
        // An aggressive repair policy, so the recycling overlaps the
        // client's traffic window within the simulated horizon.
        cfg.node_repair = Some(NodeRepairConfig {
            unready_grace_ms: 5_000,
            cooldown_ms: 10_000,
            ..Default::default()
        });
    }
    let mut world = World::new(cfg, Rc::new(RefCell::new(NoopInterceptor)));
    world.prepare(DEPLOY.preinstalled_apps());

    // The blackout: every kubelet stops reporting heartbeats.
    for kubelet in world.kubelets.iter_mut() {
        kubelet.healthy = false;
    }
    world.schedule_ops(DEPLOY.ops());
    world.run_to_horizon();

    let last = world.stats.last_sample().unwrap();
    let repair = world.repairer.as_ref().map(|r| r.metrics).unwrap_or_default();
    // The service dips while machines are recycled; the worst observed
    // readiness tells the outage story the end state hides.
    let min_ready = world
        .stats
        .samples
        .iter()
        .filter(|s| s.at >= world.t0())
        .filter_map(|s| s.app_ready.get("web-1"))
        .min()
        .copied()
        .unwrap_or(0);
    println!(
        "full disruption {} auto-repair {}: nodes NotReady = {}/{}, evicted = {}, \
         nodes deleted = {}, pods torn down = {}, web-1 ready min/end = {}/{:?}, \
         failed client requests = {}",
        if full_disruption_mode { "ON " } else { "OFF" },
        if auto_repair { "ON " } else { "OFF" },
        last.nodes_not_ready,
        world.kubelets.len(),
        world.kcm.metrics.pods_evicted,
        repair.nodes_deleted,
        repair.pods_torn_down,
        min_ready,
        last.app_ready.get("web-1"),
        world.stats.client_failures(),
    );
    for e in world.trace.borrow().iter().filter(|e| e.message.contains("disruption")).take(1) {
        println!("  kcm said: {}", e.message);
    }
}

fn main() {
    println!("== Figure 2 cascade: cluster-wide heartbeat blackout ==");
    run(true, false);
    run(false, false);
    run(true, true);
    println!(
        "(full disruption mode suspends evictions — but the cloud's node auto-repair \
         loop keeps recycling the machines, taking their healthy pods down with \
         them: the paper's Figure 2 outage)"
    );
}
