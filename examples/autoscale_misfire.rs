//! Wrong Autoscale Trigger (Table I(a)): "autoscaling of Pods or Nodes is
//! based on misleading information". A HorizontalPodAutoscaler tracks the
//! client's real load (20 rps, 5 rps per replica → 4 replicas) until one
//! corrupted metric value (999 rps) in the `service-load` ConfigMap
//! drives it to its maximum — the paper's over-provisioning (MoR) failure
//! class, here triggered end-to-end through the store channel.
//!
//! ```text
//! cargo run --release --example autoscale_misfire
//! ```

use k8s_model::HorizontalPodAutoscaler;
use mutiny_lab::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn run(label: &str, corrupt_metric: bool) {
    let mut cluster = ClusterConfig { seed: 9, ..ClusterConfig::default() };
    cluster.net.publish_metrics = true;
    let mutiny = Rc::new(RefCell::new(if corrupt_metric {
        Mutiny::armed_from(
            InjectionSpec {
                channel: Channel::ApiToEtcd.into(),
                kind: Kind::ConfigMap,
                point: InjectionPoint::Field {
                    path: "data['default/web-1-svc']".into(),
                    mutation: FieldMutation::Set(Value::Str("999".into())),
                },
                occurrence: 1,
            },
            k8s_cluster::WORKLOAD_START_MS,
        )
    } else {
        Mutiny::disarmed()
    }));
    let handle: k8s_apiserver::InterceptorHandle = mutiny;
    let mut world = World::new(cluster, handle);
    world.prepare(DEPLOY.preinstalled_apps());

    let mut hpa = HorizontalPodAutoscaler::default();
    hpa.metadata = k8s_model::ObjectMeta::named("default", "web-1-hpa");
    hpa.spec.scale_target = "web-1".into();
    hpa.spec.min_replicas = 2;
    hpa.spec.max_replicas = 8;
    hpa.spec.target_load = 5;
    world
        .api
        .create(Channel::UserToApi, Object::HorizontalPodAutoscaler(hpa))
        .expect("create hpa");

    world.schedule_ops(DEPLOY.ops());
    println!("\n--- {label} ---");
    println!("  {:>9} {:>9} {:>9} {:>13}", "t (ms)", "replicas", "observed", "desired");
    while world.now() < world.horizon() {
        let next = (world.now() + 5_000).min(world.horizon());
        world.run_until(next);
        let replicas = match world.api.get(Kind::Deployment, "default", "web-1").as_deref() {
            Some(Object::Deployment(d)) => d.spec.replicas,
            _ => -1,
        };
        if let Some(Object::HorizontalPodAutoscaler(h)) =
            world.api.get(Kind::HorizontalPodAutoscaler, "default", "web-1-hpa").as_deref()
        {
            println!(
                "  {:>9} {:>9} {:>9} {:>13}",
                world.now(),
                replicas,
                h.status.observed_load,
                h.status.desired_replicas
            );
        }
    }
    println!("  scale actions: {}", world.kcm.metrics.hpa_scalings);
    println!("  client failures: {}", world.stats.client_failures());
}

fn main() {
    run("healthy autoscaling (20 rps / 5 per replica)", false);
    run("one corrupted metric value (999 rps)", true);
}
