//! The paper's §VI-B proposals in action, against the flagship failure.
//!
//! One corrupted character in a stored pod-template label is injected at
//! two different points of the object's life, producing two different
//! failure modes — and showing which defense covers which:
//!
//! * **corrupted create** (occurrence 1): validation was passed before
//!   the corruption, so the controller loops creating pods that never
//!   match the selector — the uncontrolled-replication storm (Sta/Out).
//!   Redundancy codes detect-and-discard; the circuit breaker suspends
//!   the runaway controller. The change guard is blind here: a corrupted
//!   *create* has no previous value to roll back to.
//! * **corrupted update** (occurrence 2, scale-up workload): the stored
//!   object becomes internally inconsistent, so every subsequent
//!   controller write is rejected by validation and the service freezes
//!   below its target (LeR) — silently, unless something journals the
//!   divergence (F4). Redundancy codes roll back to the last good value;
//!   the guard journals the corruption for the operator.
//!
//! ```text
//! cargo run --release --example mitigations_demo
//! ```

use mutiny_lab::prelude::*;

fn storm_spec(occurrence: u32) -> InjectionSpec {
    InjectionSpec {
        channel: Channel::ApiToEtcd.into(),
        kind: Kind::ReplicaSet,
        point: InjectionPoint::Field {
            path: "spec.template.metadata.labels['app']".into(),
            mutation: FieldMutation::FlipStringChar(0),
        },
        occurrence,
    }
}

fn run(label: &str, scenario: Scenario, occurrence: u32, mitigations: MitigationsConfig) {
    let cluster = ClusterConfig { seed: 7, mitigations, ..ClusterConfig::default() };
    let cfg =
        ExperimentConfig { cluster, scenario, injection: Some(mutiny_core::ArmedFault::implied(storm_spec(occurrence))) };
    let (mut world, _) = mutiny_core::campaign::run_world(&cfg);

    let last = world.stats.samples.last().expect("metrics sampled").clone();
    let mut ready = last.app_ready.iter().map(|(k, v)| format!("{k}={v}")).collect::<Vec<_>>();
    ready.sort();
    println!("\n--- {label} ---");
    println!(
        "  pods created = {:<5} ready replicas: {}  kcm errors = {}",
        last.pods_created_cum,
        ready.join(" "),
        world.kcm.metrics.reconcile_errors,
    );
    println!(
        "  integrity: violations={} repaired={} discarded={}",
        world.api.integrity_metrics.violations,
        world.api.integrity_metrics.repaired,
        world.api.integrity_metrics.discarded,
    );
    if let Some(b) = &world.breaker {
        println!(
            "  breaker: trips={} surplus deleted={} suspended={:?}",
            b.metrics.trips,
            b.metrics.surplus_deleted,
            b.tripped().collect::<Vec<_>>(),
        );
    }
    let journal: Vec<String> = world
        .guard
        .as_ref()
        .map(|g| {
            g.journal()
                .iter()
                .flat_map(|rec| {
                    rec.changes
                        .iter()
                        .map(|(path, old, new)| format!("{} {path}: {old:?} -> {new:?}", rec.key))
                        .collect::<Vec<_>>()
                })
                .collect()
        })
        .unwrap_or_default();
    if let Some(g) = &world.guard {
        println!("  guard: journaled={} rollbacks={}", g.metrics.journaled, g.metrics.rollbacks);
        for line in journal.iter().filter(|l| l.contains("labels")).take(2) {
            println!("    journal: {line}");
        }
    }
    let _ = world.api.count(Kind::Pod, None);
}

fn main() {
    println!("=== Corrupted CREATE (occurrence 1): the replication storm ===");
    for (label, m) in [
        ("unmitigated (the paper's Sta outcome)", MitigationsConfig::default()),
        ("redundancy codes (detect + discard the corrupted create)", MitigationsConfig {
            integrity: true,
            ..Default::default()
        }),
        ("replication circuit breaker (suspend the runaway owner)", MitigationsConfig {
            breaker: true,
            ..Default::default()
        }),
        ("change guard alone (blind: creates have no old value)", MitigationsConfig {
            guard: true,
            ..Default::default()
        }),
        ("all defenses", MitigationsConfig::all()),
    ] {
        run(label, DEPLOY, 1, m);
    }

    println!("\n=== Corrupted UPDATE (occurrence 2, scale-up): the frozen service ===");
    for (label, m) in [
        ("unmitigated (service stuck below target, user unaware — F4)", MitigationsConfig::default()),
        ("redundancy codes (roll back to the last good template)", MitigationsConfig {
            integrity: true,
            ..Default::default()
        }),
        ("change guard (journals the silent divergence)", MitigationsConfig {
            guard: true,
            ..Default::default()
        }),
    ] {
        run(label, SCALE_UP, 2, m);
    }
}
