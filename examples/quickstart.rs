//! Quickstart: build the simulated cluster, run one golden experiment and
//! one injection experiment, and print what Mutiny did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mutiny_lab::prelude::*;

fn main() {
    // A golden (fault-free) "deploy" experiment: three Deployments are
    // created while an application client sends 20 req/s to web-1.
    let golden = run_experiment(&ExperimentConfig::golden(DEPLOY, 42));
    println!("golden run   → orchestrator: {}  client: {}", golden.orchestrator_failure, golden.client_failure);

    // Now the same workload with one fault: the 5th bit of the Deployment
    // replica count is flipped in the apiserver→etcd transaction
    // (2 → 18), after validation already passed.
    let spec = InjectionSpec {
        channel: Channel::ApiToEtcd.into(),
        kind: Kind::Deployment,
        point: InjectionPoint::Field {
            path: "spec.replicas".into(),
            mutation: FieldMutation::FlipIntBit(4),
        },
        occurrence: 1,
    };
    let out = run_experiment(&ExperimentConfig::injected(DEPLOY, 42, spec));
    println!(
        "injected run → orchestrator: {}  client: {}  (z = {:.1}, user saw an error: {})",
        out.orchestrator_failure, out.client_failure, out.z_latency, out.user_saw_error
    );
    if let Some(rec) = &out.injected {
        println!(
            "injection fired at t={} ms on {}: {:?} → {:?}",
            rec.at, rec.key, rec.before, rec.after
        );
    }
    println!("pods created: {} (golden baseline creates 6)", out.pods_created);
}
