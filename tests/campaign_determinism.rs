//! Work-stealing must not change results: per-experiment seeds derive
//! from the planned (scenario, spec) — never from the plan index — so
//! the campaign rows (and the golden baselines) must be identical to a
//! serial run for any worker count and for either executor
//! (shared-index stealing or the legacy static chunks). The
//! same holds for every scenario in the registry — the rolling-update
//! and node-drain additions are pinned here explicitly — and for every
//! fault family, including the node-level families routed on per-node
//! channel identity.

use k8s_cluster::ClusterConfig;
use k8s_model::Channel;
use mutiny_core::campaign::{
    generate_plan, plan_campaign, record_fields, run_campaign_range, run_campaign_static_chunks,
    run_campaign_with_threads, PlannedExperiment,
};
use mutiny_core::golden::build_baseline_with_threads;
use mutiny_core::Scenario;
use mutiny_faults::{
    CRASH_RESTART, DELAY, DUPLICATE, KUBELET_CRASH_RESTART, NODE_PARTITION, PARTITION,
};
use mutiny_scenarios::{DEPLOY, FAILOVER, HPA_AUTOSCALE, NODE_DRAIN, ROLLING_UPDATE, SCALE_UP};
use simkit::Rng;
use std::collections::HashMap;

/// A small but fault-diverse slice of a scenario's real plan.
fn small_plan(cluster: &ClusterConfig, scenario: Scenario) -> Vec<PlannedExperiment> {
    let traffic = record_fields(cluster, scenario, vec![Channel::ApiToEtcd], 42);
    let mut rng = Rng::new(7);
    let full = generate_plan(&traffic, scenario, &mut rng);
    // Stride widely so the slice spans field mutations, proto-byte flips
    // and drops while staying cheap enough for CI.
    let stride = (full.len() / 6).max(1);
    let plan: Vec<PlannedExperiment> = full.into_iter().step_by(stride).take(6).collect();
    assert!(plan.len() >= 4, "plan too small to be meaningful");
    plan
}

#[test]
fn campaign_rows_identical_across_thread_counts() {
    let cluster = ClusterConfig::default();
    let plan = small_plan(&cluster, DEPLOY);
    let mut baselines = HashMap::new();
    baselines.insert(DEPLOY, build_baseline_with_threads(&cluster, DEPLOY, 4, 0xBA5E, 1));

    let serial = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, 1);
    assert_eq!(serial.len(), plan.len());

    for threads in [2usize, 5] {
        let parallel = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, threads);
        assert_eq!(serial.rows, parallel.rows, "work-stealing changed results at {threads} threads");
    }

    let chunked = run_campaign_static_chunks(&cluster, &plan, &baselines, 2024, 3);
    assert_eq!(serial.rows, chunked.rows, "executors disagree");
}

#[test]
fn new_scenarios_deterministic_across_thread_counts() {
    // The engine's two additions run the same determinism gauntlet as the
    // paper scenarios: byte-identical rows at 1, 2 and 5 workers.
    let cluster = ClusterConfig::default();
    for scenario in [ROLLING_UPDATE, NODE_DRAIN] {
        let plan = small_plan(&cluster, scenario);
        let mut baselines = HashMap::new();
        baselines
            .insert(scenario, build_baseline_with_threads(&cluster, scenario, 4, 0xBA5E, 1));

        let serial = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, 1);
        assert_eq!(serial.len(), plan.len());
        // Rows carry the scenario they ran under (the tables key on it).
        assert!(serial.rows.iter().all(|r| r.scenario == scenario), "{scenario}");

        for threads in [2usize, 5] {
            let parallel =
                run_campaign_with_threads(&cluster, &plan, &baselines, 2024, threads);
            assert_eq!(
                serial.rows, parallel.rows,
                "{scenario}: rows changed at {threads} threads"
            );
        }
    }
}

#[test]
fn range_partitions_reassemble_the_full_campaign() {
    // The checkpointing contract: running [0..k) and [k..n) separately
    // must concatenate to exactly the uninterrupted run's rows.
    let cluster = ClusterConfig::default();
    let plan = small_plan(&cluster, ROLLING_UPDATE);
    let mut baselines = HashMap::new();
    baselines.insert(
        ROLLING_UPDATE,
        build_baseline_with_threads(&cluster, ROLLING_UPDATE, 4, 0xBA5E, 1),
    );

    let full = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, 2);
    let split = plan.len() / 2;
    let mut stitched = run_campaign_range(&cluster, &plan, &baselines, 2024, 0..split, 2);
    stitched.merge(run_campaign_range(&cluster, &plan, &baselines, 2024, split..plan.len(), 2));
    assert_eq!(full.rows, stitched.rows, "resumed campaign diverged from uninterrupted run");
}

#[test]
fn new_fault_families_deterministic_across_thread_counts() {
    // The temporal and infrastructure families run the same determinism
    // gauntlet as the wire triplet: byte-identical rows at 1, 2 and 5
    // workers. Crash-restart is the hardest case — its heal action
    // restarts the apiserver mid-run — so it is pinned here explicitly.
    let cluster = ClusterConfig::default();
    let traffic = record_fields(&cluster, DEPLOY, vec![Channel::ApiToEtcd], 42);
    let families = [DELAY, DUPLICATE, PARTITION, CRASH_RESTART];
    let mut rng = Rng::new(7);
    let full = plan_campaign(&traffic, DEPLOY, &families, &mut rng);
    // Two specs per family keeps the gauntlet cheap but window-diverse.
    let mut plan: Vec<PlannedExperiment> = Vec::new();
    for family in families {
        plan.extend(full.iter().filter(|p| p.fault == family).take(2).cloned());
    }
    assert!(plan.len() >= 7, "not every family planned specs: {}", plan.len());

    let mut baselines = HashMap::new();
    baselines.insert(DEPLOY, build_baseline_with_threads(&cluster, DEPLOY, 4, 0xBA5E, 1));
    let serial = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, 1);
    assert_eq!(serial.len(), plan.len());
    // Window faults always fire (the window opens with or without
    // traffic); temporal faults fire when their occurrence flows.
    assert!(
        serial.rows.iter().filter(|r| r.fault == PARTITION || r.fault == CRASH_RESTART).all(|r| r.fired),
        "window faults must fire"
    );
    for threads in [2usize, 5] {
        let parallel = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, threads);
        assert_eq!(serial.rows, parallel.rows, "new families changed results at {threads} threads");
    }
}

#[test]
fn node_level_families_tsv_byte_identical_across_thread_counts() {
    // The node-level families are the hardest determinism case yet: a
    // kubelet blackout silences and restarts one node's kubelet mid-run
    // through out-of-band world actions, and a node partition drops one
    // node's wire. Rows — and the rendered TSV, node-scoped channel
    // column included — must be byte-identical at 1, 2 and 5 workers.
    let cluster = ClusterConfig::default();
    let traffic = record_fields(&cluster, DEPLOY, vec![Channel::ApiToEtcd], 42);
    assert!(
        traffic.nodes().len() >= 5,
        "per-node wires missing from recorded traffic: {:?}",
        traffic.nodes()
    );
    let families = [KUBELET_CRASH_RESTART, NODE_PARTITION];
    let mut rng = Rng::new(7);
    let full = plan_campaign(&traffic, DEPLOY, &families, &mut rng);
    // Two specs per family: one blackout and one partition window each,
    // on different victim nodes.
    let mut plan: Vec<PlannedExperiment> = Vec::new();
    for family in families {
        let of_family: Vec<&PlannedExperiment> =
            full.iter().filter(|p| p.fault == family).collect();
        assert!(of_family.len() >= 2, "{family} planned too few specs");
        plan.push(of_family[0].clone());
        plan.push(of_family[of_family.len() - 1].clone());
    }
    assert!(plan.iter().all(|p| p.spec.channel.node().is_some()), "{plan:?}");

    let mut baselines = HashMap::new();
    baselines.insert(DEPLOY, build_baseline_with_threads(&cluster, DEPLOY, 4, 0xBA5E, 1));
    let serial = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, 1);
    let serial_tsv = mutiny_bench::render_rows(&serial);
    assert_eq!(serial_tsv.lines().count(), plan.len());
    // Node-scoped wires reach the TSV channel column as `class@node`.
    assert!(
        serial_tsv.contains("kubelet->apiserver@"),
        "node column missing from TSV: {serial_tsv}"
    );
    // Window faults fire with or without traffic.
    assert!(serial.rows.iter().all(|r| r.fired), "node-level window faults must fire");
    for threads in [2usize, 5] {
        let parallel = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, threads);
        assert_eq!(
            serial_tsv,
            mutiny_bench::render_rows(&parallel),
            "node-level families diverged at {threads} threads"
        );
    }
}

#[test]
fn cross_product_tsv_byte_identical_across_thread_counts() {
    // The acceptance gate: a campaign over {6 scenarios} × {≥14 fault
    // families, config-defect families included} produces byte-identical
    // TSV rows at 1, 2 and 5 workers. One spec per (scenario, family)
    // keeps it tractable for CI.
    let cluster = ClusterConfig::default();
    let scenarios = [DEPLOY, SCALE_UP, FAILOVER, ROLLING_UPDATE, NODE_DRAIN, HPA_AUTOSCALE];
    let families = mutiny_faults::registry::all();
    assert!(families.len() >= 14);

    let mut rng = Rng::new(11);
    let mut plan: Vec<PlannedExperiment> = Vec::new();
    let mut baselines = HashMap::new();
    for sc in scenarios {
        let traffic = record_fields(&cluster, sc, vec![Channel::ApiToEtcd], 42);
        let full = plan_campaign(&traffic, sc, &families, &mut rng);
        for family in &families {
            if let Some(p) = full.iter().find(|p| p.fault == *family) {
                plan.push(p.clone());
            }
        }
        // Pod-targeting config defects must find victims in every
        // scenario's admission catalogue (the controllers always create
        // pods after the workload starts); workload-targeting defects
        // (selector, replicas) only plan where ReplicaSets/Deployments
        // are actually admitted post-arming — failover and node-drain
        // preinstall their apps, so those two plan nothing there.
        let workload_only = sc == FAILOVER || sc == NODE_DRAIN;
        for cfg_family in mutiny_faults::CONFIG_BUILTIN {
            let workload_family =
                cfg_family == mutiny_faults::CFG_SELECTOR || cfg_family == mutiny_faults::CFG_REPLICAS;
            if workload_only && workload_family {
                assert!(
                    !full.iter().any(|p| p.fault == cfg_family),
                    "{cfg_family} planned unreachable victims for {sc}"
                );
            } else {
                assert!(
                    full.iter().any(|p| p.fault == cfg_family),
                    "{cfg_family} planned nothing for {sc}"
                );
            }
        }
        baselines.insert(sc, build_baseline_with_threads(&cluster, sc, 4, 0xBA5E, 1));
    }
    // 6 scenarios × 14 families, minus the four unreachable
    // (workload-defect, preinstalled-scenario) combinations above.
    assert!(plan.len() >= 6 * 14 - 4, "cross-product too small: {}", plan.len());

    let serial = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, 1);
    let serial_tsv = mutiny_bench::render_rows(&serial);
    assert_eq!(serial_tsv.lines().count(), plan.len());
    for threads in [2usize, 5] {
        let parallel = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, threads);
        assert_eq!(
            serial_tsv,
            mutiny_bench::render_rows(&parallel),
            "TSV rows diverged at {threads} threads"
        );
    }
}

#[test]
fn generated_scenarios_tsv_byte_identical_across_thread_counts() {
    // Synthesized scenarios run the same determinism gauntlet as the
    // built-ins: generation is pure planning (same seed ⇒ same program),
    // so a generated scenario's campaign TSV must be byte-identical at
    // 1, 2 and 5 workers.
    let cluster = ClusterConfig::default();
    let generated = mutiny_trace::register_generated(2, 0xD15C).expect("register generated");
    assert_eq!(generated.len(), 2);
    assert!(generated.iter().all(|s| s.name().starts_with("gen-")));

    let mut plan: Vec<PlannedExperiment> = Vec::new();
    let mut baselines = HashMap::new();
    for sc in generated {
        // The program itself must be stable call over call — ops() feeds
        // both the plan's traffic recording and every experiment run.
        assert_eq!(sc.ops(), sc.ops(), "{sc}: non-deterministic program");
        plan.extend(small_plan(&cluster, sc));
        baselines.insert(sc, build_baseline_with_threads(&cluster, sc, 4, 0xBA5E, 1));
    }

    let serial = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, 1);
    let serial_tsv = mutiny_bench::render_rows(&serial);
    assert_eq!(serial_tsv.lines().count(), plan.len());
    for threads in [2usize, 5] {
        let parallel = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, threads);
        assert_eq!(
            serial_tsv,
            mutiny_bench::render_rows(&parallel),
            "generated scenarios diverged at {threads} threads"
        );
    }
}

#[test]
fn baseline_identical_across_thread_counts() {
    let cluster = ClusterConfig::default();
    let one = build_baseline_with_threads(&cluster, DEPLOY, 5, 77, 1);
    let many = build_baseline_with_threads(&cluster, DEPLOY, 5, 77, 4);
    assert_eq!(one.avg_response, many.avg_response);
    assert_eq!(one.golden_maes, many.golden_maes);
    assert_eq!(one.golden_worst_startup, many.golden_worst_startup);
    assert_eq!(one.expected_ready, many.expected_ready);
    assert_eq!(one.expected_endpoints, many.expected_endpoints);
    assert_eq!(one.expected_pods_created, many.expected_pods_created);
}
