//! Work-stealing must not change results: per-experiment seeds derive
//! from the plan index, so the campaign rows (and the golden baselines)
//! must be identical to a serial run for any worker count and for either
//! executor (shared-index stealing or the legacy static chunks).

use k8s_cluster::{ClusterConfig, Workload};
use k8s_model::Channel;
use mutiny_core::campaign::{
    generate_plan, record_fields, run_campaign_static_chunks, run_campaign_with_threads,
    PlannedExperiment,
};
use mutiny_core::golden::build_baseline_with_threads;
use simkit::Rng;
use std::collections::HashMap;

/// A small but fault-diverse slice of the real Deploy plan.
fn small_plan(cluster: &ClusterConfig) -> Vec<PlannedExperiment> {
    let (fields, kinds) = record_fields(cluster, Workload::Deploy, vec![Channel::ApiToEtcd], 42);
    let mut rng = Rng::new(7);
    let full = generate_plan(&fields, &kinds, Workload::Deploy, &mut rng);
    // Stride widely so the slice spans field mutations, proto-byte flips
    // and drops while staying cheap enough for CI.
    let stride = (full.len() / 6).max(1);
    let plan: Vec<PlannedExperiment> = full.into_iter().step_by(stride).take(6).collect();
    assert!(plan.len() >= 4, "plan too small to be meaningful");
    plan
}

#[test]
fn campaign_rows_identical_across_thread_counts() {
    let cluster = ClusterConfig::default();
    let plan = small_plan(&cluster);
    let mut baselines = HashMap::new();
    baselines
        .insert(Workload::Deploy, build_baseline_with_threads(&cluster, Workload::Deploy, 4, 0xBA5E, 1));

    let serial = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, 1);
    assert_eq!(serial.len(), plan.len());

    for threads in [2usize, 5] {
        let parallel = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, threads);
        assert_eq!(serial.rows, parallel.rows, "work-stealing changed results at {threads} threads");
    }

    let chunked = run_campaign_static_chunks(&cluster, &plan, &baselines, 2024, 3);
    assert_eq!(serial.rows, chunked.rows, "executors disagree");
}

#[test]
fn baseline_identical_across_thread_counts() {
    let cluster = ClusterConfig::default();
    let one = build_baseline_with_threads(&cluster, Workload::Deploy, 5, 77, 1);
    let many = build_baseline_with_threads(&cluster, Workload::Deploy, 5, 77, 4);
    assert_eq!(one.avg_response, many.avg_response);
    assert_eq!(one.golden_maes, many.golden_maes);
    assert_eq!(one.golden_worst_startup, many.golden_worst_startup);
    assert_eq!(one.expected_ready, many.expected_ready);
    assert_eq!(one.expected_endpoints, many.expected_endpoints);
    assert_eq!(one.expected_pods_created, many.expected_pods_created);
}
