//! End-to-end failure-scenario regressions: each test injects one fault
//! through the full stack (wire codec → apiserver → etcd → controllers →
//! kubelets → network → client) and asserts the §V-B classification the
//! paper's mechanisms predict.

use mutiny_lab::prelude::*;
use std::sync::OnceLock;

fn baseline() -> &'static mutiny_core::Baseline {
    static B: OnceLock<mutiny_core::Baseline> = OnceLock::new();
    B.get_or_init(|| {
        mutiny_core::build_baseline(&ClusterConfig::default(), DEPLOY, 8, 7)
    })
}

fn run(spec: InjectionSpec, seed: u64) -> ExperimentOutcome {
    let cfg = ExperimentConfig::injected(DEPLOY, seed, spec);
    run_experiment_with_baseline(&cfg, baseline())
}

fn field(kind: Kind, path: &str, mutation: FieldMutation, occurrence: u32) -> InjectionSpec {
    InjectionSpec {
        channel: Channel::ApiToEtcd.into(),
        kind,
        point: InjectionPoint::Field { path: path.into(), mutation },
        occurrence,
    }
}

#[test]
fn golden_runs_classify_clean_for_every_scenario() {
    // The whole registry, not just the paper's three: rolling-update and
    // node-drain golden runs must classify clean too.
    for (i, sc) in registry::all().into_iter().enumerate() {
        let out = run_experiment(&ExperimentConfig::golden(sc, 11 + i as u64));
        assert_eq!(out.orchestrator_failure, OrchestratorFailure::No, "{sc}");
        assert_eq!(out.client_failure, ClientFailure::Nsi, "{sc}");
        assert!(!out.user_saw_error, "{sc}");
    }
}

#[test]
fn corrupted_template_label_causes_uncontrolled_replication() {
    // The paper's flagship §V-C1 example: one bit in the stored pod
    // template label makes every spawned pod invisible to its controller.
    let mut cluster = ClusterConfig::default();
    // A small disk budget bounds the storm so the test stays fast; the
    // stall is itself a Sta signal (the paper's end state).
    cluster.etcd_capacity_bytes = 256 * 1024;
    let spec = field(
        Kind::ReplicaSet,
        "spec.template.metadata.labels['app']",
        FieldMutation::FlipStringChar(0),
        1,
    );
    let cfg = ExperimentConfig { cluster, scenario: DEPLOY, injection: Some(mutiny_core::ArmedFault::implied(spec)) };
    let out = run_experiment_with_baseline(&cfg, baseline());
    assert_eq!(out.orchestrator_failure, OrchestratorFailure::Sta, "{out:?}");
    assert!(out.pods_created > 50, "spawn storm expected, got {}", out.pods_created);
    assert!(!out.user_saw_error, "the user must stay unaware (F4)");
}

#[test]
fn cfg_selector_template_typo_orphans_pods() {
    // The same orphan storm from the configuration-defect dimension: no
    // bit flips, just a valid ReplicaSet admitted with a pod-template
    // label that its own selector will never match. The controller
    // orphans every pod it spawns and keeps spawning replacements.
    let mut cluster = ClusterConfig::default();
    cluster.etcd_capacity_bytes = 256 * 1024; // bound the storm
    let spec = InjectionSpec {
        channel: Channel::KcmToApi.into(),
        kind: Kind::ReplicaSet,
        point: InjectionPoint::Config { defect: "selector".into(), param: 0 },
        occurrence: 1,
    };
    let cfg = ExperimentConfig {
        cluster,
        scenario: DEPLOY,
        injection: Some(mutiny_core::ArmedFault::new(mutiny_faults::CFG_SELECTOR, spec)),
    };
    let out = run_experiment_with_baseline(&cfg, baseline());
    assert!(out.injected.is_some(), "config defect must fire: {out:?}");
    assert_eq!(out.orchestrator_failure, OrchestratorFailure::Sta, "{out:?}");
    assert!(out.pods_created > 50, "orphan storm expected, got {}", out.pods_created);
    assert!(!out.user_saw_error, "a valid spec is admitted without errors (F4)");
}

#[test]
fn replica_count_bit_flip_causes_more_resources() {
    // Bit 4 of the Deployment replica count: 2 → 18 (§IV-C's high bit).
    let out = run(field(Kind::Deployment, "spec.replicas", FieldMutation::FlipIntBit(4), 1), 21);
    assert_eq!(out.orchestrator_failure, OrchestratorFailure::MoR, "{out:?}");
    assert!(out.pods_created > 10);
}

#[test]
fn replicaset_replica_corruption_is_overwritten_by_deployment() {
    // The §V-C1 recovery path: the owning Deployment resets a corrupted
    // ReplicaSet replica count on its next sync.
    let out =
        run(field(Kind::ReplicaSet, "spec.replicas", FieldMutation::FlipIntBit(4), 1), 22);
    assert!(
        matches!(out.orchestrator_failure, OrchestratorFailure::No | OrchestratorFailure::MoR),
        "expected recovery (No) or a transient MoR, got {out:?}"
    );
    assert_ne!(out.orchestrator_failure, OrchestratorFailure::Sta);
}

#[test]
fn emptied_image_prevents_pod_start() {
    // Data-type set on the stored template image: pods never become
    // ready (ImagePullBackOff) → Less Resources.
    let out = run(
        field(
            Kind::Deployment,
            "spec.template.spec.containers[0].image",
            FieldMutation::Set(Value::Str(String::new())),
            1,
        ),
        23,
    );
    assert_eq!(out.orchestrator_failure, OrchestratorFailure::LeR, "{out:?}");
}

#[test]
fn node_name_corruption_restarts_scheduler() {
    // The paper's Timing example: a corrupted binding makes the scheduler
    // detect a cache mismatch and restart; re-election costs ~20 s.
    let out = run(
        field(Kind::Pod, "spec.nodeName", FieldMutation::FlipStringChar(0), 2),
        24,
    );
    assert_eq!(out.orchestrator_failure, OrchestratorFailure::Tim, "{out:?}");
}

#[test]
fn message_drops_match_paper_outcomes() {
    // Dropping Endpoints/ReplicaSet updates is absorbed by level-triggered
    // reconciliation (most drops are "No" in Table IV); a dropped Pod
    // *create* leaves the controller's expectations unfulfilled and the
    // service under-provisioned — the paper's LeR drop rows.
    for (kind, seed, accept) in [
        (Kind::Pod, 31, &[OrchestratorFailure::LeR][..]),
        (Kind::Endpoints, 32, &[OrchestratorFailure::No, OrchestratorFailure::Tim][..]),
        (Kind::ReplicaSet, 33, &[OrchestratorFailure::No, OrchestratorFailure::Tim][..]),
    ] {
        let spec = InjectionSpec {
            channel: Channel::ApiToEtcd.into(),
            kind,
            point: InjectionPoint::Drop,
            occurrence: 1,
        };
        let out = run(spec, seed);
        assert!(
            accept.contains(&out.orchestrator_failure),
            "drop of {kind}: expected one of {accept:?}, got {out:?}"
        );
        assert!(!out.user_saw_error, "drops are silent by construction");
    }
}

#[test]
fn pod_ip_corruption_is_overwritten_by_kubelet() {
    // §V-C1 recovery example: the kubelet rewrites the true PodIP.
    let out = run(
        field(Kind::Pod, "status.podIP", FieldMutation::Set(Value::Str("10.9.9.9".into())), 3),
        25,
    );
    assert!(
        matches!(
            out.orchestrator_failure,
            OrchestratorFailure::No | OrchestratorFailure::Tim | OrchestratorFailure::Net
        ),
        "{out:?}"
    );
    assert_ne!(out.client_failure, ClientFailure::Su);
}

#[test]
fn service_selector_corruption_breaks_networking() {
    // The client's own Service loses its endpoints: Net at the
    // orchestrator level, SU at the client. Injected as a direct store
    // corruption (the paper's scenario-driven variant) because the
    // pre-installed Service is not rewritten during the workload.
    let cfg = ExperimentConfig::golden(DEPLOY, 26);
    let mutiny = std::rc::Rc::new(std::cell::RefCell::new(Mutiny::disarmed()));
    let handle: k8s_apiserver::InterceptorHandle = mutiny;
    let mut world = World::new(cfg.cluster.clone(), handle);
    world.prepare(DEPLOY.preinstalled_apps());
    if let Some(Object::Service(svc)) = world.api.get(Kind::Service, "default", "web-1-svc").as_deref()
    {
        let mut svc = svc.clone();
        svc.spec.selector.insert("app".into(), "veb-1".into());
        world.api.update(Channel::ApiToEtcd, Object::Service(svc)).unwrap();
    } else {
        panic!("client service missing after setup");
    }
    world.schedule_ops(DEPLOY.ops());
    world.run_to_horizon();
    let of = mutiny_core::classify::classify_orchestrator(&world.stats, baseline());
    let (cf, _) = mutiny_core::classify::classify_client(&world.stats, baseline());
    assert_eq!(cf, ClientFailure::Su, "client must lose the service");
    assert_eq!(of, OrchestratorFailure::Net, "replicas right, networking wrong");
}

#[test]
fn kubelet_blackout_reschedules_victim_pods_on_surviving_nodes() {
    // The availability-manager recovery path (arXiv:1901.04946), end to
    // end: a single-node kubelet blackout lapses the node's heartbeats,
    // the node-lifecycle controller marks it NotReady and evicts its
    // pods, the scheduler re-places them on surviving nodes, and the
    // restarted kubelet heals the node — so the run ends with the
    // victim's pods rescheduled and Ready elsewhere and the node back.
    let cluster = ClusterConfig::default();
    let seed = 4242;

    // Phase 1: plan the family from recorded traffic, exactly like the
    // campaign does — one blackout spec per node wire.
    let traffic = record_fields(&cluster, DEPLOY, vec![Channel::ApiToEtcd], 42);
    let mut rng = simkit::Rng::new(7);
    let plan = KUBELET_CRASH_RESTART.plan(&traffic, &mut rng);
    assert!(plan.len() >= 4, "one blackout per node wire: {plan:?}");

    // The deterministic golden twin (same seed) shows where the app pods
    // sit when the blackout opens; pick the node hosting the most app
    // pods as the victim, so the eviction path is guaranteed to carry
    // real workload.
    let (mut golden, _) = run_world(&ExperimentConfig::golden(DEPLOY, seed));
    let victim_of = |spec: &InjectionSpec| spec.channel.node().expect("node-scoped spec");
    let pods_on = |world: &mut World, node: &str| {
        let mut keys = Vec::new();
        world.api.for_each(Kind::Pod, Some("default"), |obj| {
            if let Object::Pod(p) = obj {
                if p.metadata.name.starts_with("web-") && p.spec.node_name == node {
                    keys.push(p.metadata.name.clone());
                }
            }
        });
        keys
    };
    let golden_ready = ready_web_pods(&mut golden);
    let spec = plan
        .iter()
        .max_by_key(|s| pods_on(&mut golden, victim_of(s)).len())
        .expect("non-empty plan")
        .clone();
    let victim = victim_of(&spec);
    let victim_pods = pods_on(&mut golden, victim);
    assert!(!victim_pods.is_empty(), "victim node {victim} must host app pods");
    let InjectionPoint::Crash { from_off, dur_ms } = spec.point else {
        panic!("expected a crash window: {spec:?}");
    };

    let cfg = ExperimentConfig::injected_fault(
        DEPLOY,
        seed,
        ArmedFault::new(KUBELET_CRASH_RESTART, spec.clone()),
    );
    let (mut world, record) = run_world(&cfg);
    let blackout_open = world.t0() + from_off;
    assert!(record.is_some(), "the blackout window must fire");

    // The node lease expired mid-run (NotReady observed), then healed.
    assert!(
        world.stats.samples.iter().any(|s| s.nodes_not_ready >= 1),
        "victim node never went NotReady"
    );
    assert_eq!(
        world.stats.samples.last().map(|s| s.nodes_not_ready),
        Some(0),
        "restarted kubelet must heal the node by the end of the run"
    );

    // The node-lifecycle controller evicted the dark node's pods.
    assert!(world.kcm.metrics.pods_evicted > 0, "node-lifecycle controller never evicted");
    assert!(world.stats.app_pods_deleted > 0, "no application pod was deleted");

    // Replacements created in the eviction epoch (node already NotReady,
    // wire still dark) were re-placed on surviving nodes and came up
    // Ready — the paper's availability-manager recovery path.
    let eviction_epoch = blackout_open + cluster.kcm.node_grace_ms;
    let heal = blackout_open + dur_ms;
    let mut replacements_ready = 0;
    world.api.for_each(Kind::Pod, Some("default"), |obj| {
        if let Object::Pod(p) = obj {
            let created = p.metadata.creation_timestamp.max(0) as u64;
            if p.metadata.name.starts_with("web-")
                && (eviction_epoch..heal).contains(&created)
                && p.is_ready()
            {
                assert_ne!(
                    p.spec.node_name, victim,
                    "replacement {} ran on the dark node",
                    p.metadata.name
                );
                replacements_ready += 1;
            }
        }
    });
    assert!(replacements_ready >= 1, "no rescheduled pod became Ready on a surviving node");

    // Recovery is complete: the service is back to golden strength.
    assert_eq!(
        ready_web_pods(&mut world),
        golden_ready,
        "ready capacity must return to the golden level"
    );
}

/// Ready application pods, for golden-vs-recovered comparisons.
fn ready_web_pods(world: &mut World) -> usize {
    let mut n = 0;
    world.api.for_each(Kind::Pod, Some("default"), |obj| {
        if let Object::Pod(p) = obj {
            if p.metadata.name.starts_with("web-") && p.is_ready() {
                n += 1;
            }
        }
    });
    n
}

/// Plans `family` from DEPLOY's recorded store traffic, exactly like the
/// campaign does, and returns its spec for `replica` (specs other than
/// corrupt-at-rest plan a single replica-0 spec).
fn storage_spec(cluster: &ClusterConfig, family: Fault, replica: u32) -> InjectionSpec {
    let traffic = record_fields(cluster, DEPLOY, vec![Channel::ApiToEtcd], 42);
    let mut rng = simkit::Rng::new(7);
    let plan = family.plan(&traffic, &mut rng);
    plan.iter()
        .find(|s| matches!(s.point, InjectionPoint::Storage { replica: r, .. } if r == replica))
        .unwrap_or_else(|| panic!("{} planned no replica-{replica} spec: {plan:?}", family.name()))
        .clone()
}

#[test]
fn etcd_disk_full_stalls_and_is_detected() {
    let cluster = ClusterConfig::default();
    let spec = storage_spec(&cluster, mutiny_faults::ETCD_DISK_FULL, 0);
    let cfg = ExperimentConfig::injected_fault(
        DEPLOY,
        4242,
        ArmedFault::new(mutiny_faults::ETCD_DISK_FULL, spec),
    );
    let (world, record) = run_world(&cfg);
    assert!(record.is_some(), "the disk-full window must fire");
    let tl =
        mutiny_core::campaign::propagation_timeline(&world, record.as_ref(), Some(baseline()));
    assert!(tl.detection.is_some(), "a stalled store must be monitoring-visible: {tl:?}");
    let of = mutiny_core::classify::classify_orchestrator(&world.stats, baseline());
    assert_eq!(of, OrchestratorFailure::Sta, "rejected writes stall the rollout");
    assert!(world.api.etcd().writes_rejected() > 0, "the clamp must reject real writes");
}

#[test]
fn etcd_corrupt_at_rest_is_masked_by_quorum() {
    // arXiv:1904.06206's replica-corruption case: one corrupted replica
    // of three is outvoted on every quorum read, so the fault fires,
    // nothing reaches the workload, and the run classifies clean — the
    // masking the family's expectation hint documents. The unmasked
    // paths (unquorum reads, 1-replica garbage, restart visibility) are
    // pinned at the etcd and apiserver layers.
    let mut cluster = ClusterConfig::default();
    cluster.etcd_replicas = 3;
    let spec = storage_spec(&cluster, mutiny_faults::ETCD_CORRUPT_AT_REST, 0);
    let cfg = ExperimentConfig {
        cluster,
        scenario: DEPLOY,
        injection: Some(ArmedFault::new(mutiny_faults::ETCD_CORRUPT_AT_REST, spec)),
    };
    let (world, record) = run_world(&cfg);
    assert!(record.is_some(), "corruption must fire");
    let tl =
        mutiny_core::campaign::propagation_timeline(&world, record.as_ref(), Some(baseline()));
    assert!(tl.detection.is_none(), "quorum masking keeps monitoring quiet: {tl:?}");
    assert!(tl.steady_at_end, "the run must end steady: {tl:?}");
    let out = run_experiment_with_baseline(&cfg, baseline());
    assert_eq!(out.orchestrator_failure, OrchestratorFailure::No, "{out:?}");
    assert_eq!(out.client_failure, ClientFailure::Nsi, "{out:?}");
    assert!(!out.user_saw_error, "masked corruption is silent (F4)");
}

#[test]
fn etcd_compaction_pressure_relists_and_converges() {
    let cluster = ClusterConfig::default();
    let spec = storage_spec(&cluster, mutiny_faults::ETCD_COMPACTION_PRESSURE, 0);
    let cfg = ExperimentConfig::injected_fault(
        DEPLOY,
        4242,
        ArmedFault::new(mutiny_faults::ETCD_COMPACTION_PRESSURE, spec),
    );
    let (world, record) = run_world(&cfg);
    assert!(record.is_some(), "the pressure window must fire");
    assert!(
        world.api.etcd().compactions() >= 10,
        "forced compaction every slice inside the window, got {}",
        world.api.etcd().compactions()
    );
    let out = run_experiment_with_baseline(&cfg, baseline());
    assert_eq!(out.orchestrator_failure, OrchestratorFailure::No, "re-lists converge: {out:?}");
    assert!(!out.user_saw_error);
}

#[test]
fn etcd_inconsistent_view_heals_when_the_window_closes() {
    let cluster = ClusterConfig::default();
    let spec = storage_spec(&cluster, mutiny_faults::ETCD_INCONSISTENT_VIEW, 1);
    let cfg = ExperimentConfig::injected_fault(
        DEPLOY,
        4242,
        ArmedFault::new(mutiny_faults::ETCD_INCONSISTENT_VIEW, spec),
    );
    let (world, record) = run_world(&cfg);
    assert!(record.is_some(), "the stale-view window must fire");
    assert!(
        !world.api.etcd().inconsistent_view_active(),
        "the view must heal when the window closes"
    );
    let out = run_experiment_with_baseline(&cfg, baseline());
    assert_eq!(
        out.orchestrator_failure,
        OrchestratorFailure::No,
        "reconciliation repairs on heal: {out:?}"
    );
    assert!(!out.user_saw_error);
}

#[test]
fn outcomes_are_deterministic_for_identical_seeds() {
    let spec = field(Kind::Deployment, "spec.replicas", FieldMutation::FlipIntBit(0), 1);
    let a = run(spec.clone(), 99);
    let b = run(spec, 99);
    assert_eq!(a.orchestrator_failure, b.orchestrator_failure);
    assert_eq!(a.client_failure, b.client_failure);
    assert_eq!(a.pods_created, b.pods_created);
    assert_eq!(
        a.injected.as_ref().map(|r| (r.at, r.key.clone())),
        b.injected.as_ref().map(|r| (r.at, r.key.clone()))
    );
}
