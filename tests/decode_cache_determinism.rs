//! The revision-keyed decode cache is a pure performance device: with
//! `MUTINY_DECODE_CACHE=0` every watch-cache sync decodes from bytes, and
//! the campaign TSV must not change by a single byte — at any worker
//! count. This file is its own test binary (own process), so flipping the
//! environment toggle here cannot race with the other determinism tests.

use k8s_cluster::ClusterConfig;
use k8s_model::Channel;
use mutiny_core::campaign::{
    generate_plan, record_fields, run_campaign_with_threads, PlannedExperiment,
};
use mutiny_core::golden::build_baseline_with_threads;
use mutiny_scenarios::DEPLOY;
use simkit::Rng;
use std::collections::HashMap;

#[test]
fn campaign_tsv_identical_with_decode_cache_on_and_off() {
    assert!(
        std::env::var("MUTINY_DECODE_CACHE").is_err(),
        "test owns this env var; unset it before running"
    );

    // A fault-diverse slice of the deploy plan: field mutations and
    // value-sets exercise the Replace (tampered-bytes) path where a stale
    // cached decode would be visible, drops exercise the nothing-lands
    // path, proto-byte flips the undecodable path.
    let cluster = ClusterConfig::default();
    let traffic = record_fields(&cluster, DEPLOY, vec![Channel::ApiToEtcd], 42);
    let mut rng = Rng::new(7);
    let full = generate_plan(&traffic, DEPLOY, &mut rng);
    let stride = (full.len() / 8).max(1);
    let plan: Vec<PlannedExperiment> = full.into_iter().step_by(stride).take(8).collect();
    assert!(plan.len() >= 6, "plan too small to be meaningful");

    let mut baselines = HashMap::new();
    baselines.insert(DEPLOY, build_baseline_with_threads(&cluster, DEPLOY, 4, 0xBA5E, 1));

    // Cached mode (the default): the write path must actually feed the
    // watch cache — a campaign that never hits the cache would make this
    // whole test vacuous.
    let (h0, _) = k8s_apiserver::decode_cache_stats();
    let cached = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, 1);
    let cached_tsv = mutiny_bench::render_rows(&cached);
    let (h1, _) = k8s_apiserver::decode_cache_stats();
    assert!(h1 > h0, "campaign ran without a single decode-cache hit");
    for threads in [2usize, 5] {
        let parallel = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, threads);
        assert_eq!(
            cached_tsv,
            mutiny_bench::render_rows(&parallel),
            "cached mode diverged at {threads} threads"
        );
    }

    // Decode-everything mode: byte-identical TSV at 1, 2 and 5 workers.
    std::env::set_var("MUTINY_DECODE_CACHE", "0");
    for threads in [1usize, 2, 5] {
        let uncached = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, threads);
        assert_eq!(
            cached_tsv,
            mutiny_bench::render_rows(&uncached),
            "MUTINY_DECODE_CACHE=0 changed the TSV at {threads} threads"
        );
    }
    std::env::remove_var("MUTINY_DECODE_CACHE");
}
