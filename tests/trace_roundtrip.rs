//! Trace round-trip acceptance: exporting a golden run and replaying the
//! trace as a scenario must reproduce the run — same final object store,
//! byte-identical golden baseline TSV — and registered trace scenarios
//! must behave like any other registry member.

use k8s_cluster::ClusterConfig;
use k8s_model::NoopInterceptor;
use mutiny_core::golden::build_baseline_with_threads;
use mutiny_scenarios::{Scenario, DEPLOY};
use mutiny_trace::{export_scenario, read_trace, world_digest, TraceScenario};
use std::cell::RefCell;
use std::path::PathBuf;
use std::rc::Rc;

const SEED: u64 = 2024;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mutiny_trace_roundtrip_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// One golden run of `scenario` at `seed`; returns the final object
/// store digest (every key + its encoded bytes, sorted).
fn golden_digest(
    cluster: &ClusterConfig,
    scenario: Scenario,
    seed: u64,
) -> Vec<(String, Vec<u8>)> {
    let cfg = ClusterConfig { seed, ..cluster.clone() };
    let mut world = scenario.build_world(&cfg, Rc::new(RefCell::new(NoopInterceptor)));
    scenario.schedule(&mut world);
    world.run_to_horizon();
    world_digest(&mut world)
}

#[test]
fn replayed_deploy_reproduces_the_recorded_run() {
    let cluster = ClusterConfig::default();
    let dir = temp_dir("deploy");

    // RECORD: export one golden deploy run as a trace file.
    let path = export_scenario(&cluster, DEPLOY, SEED, &dir).expect("export trace");
    let trace = read_trace(&path).expect("read back");
    assert_eq!(trace.source, "deploy");
    assert_eq!(trace.events.len(), 6, "deploy submits 3 Deployments + 3 Services");

    // REPLAY: the trace as a scenario. The replay re-submits the recorded
    // bytes at the recorded offsets through the same request pipeline, so
    // under the recorded seed the final world state must match exactly.
    let replay =
        Scenario::new(Box::leak(Box::new(TraceScenario::from_file(&path).expect("load"))));
    assert_eq!(replay.name(), "trace-deploy");
    assert_eq!(replay.preinstalled_apps(), DEPLOY.preinstalled_apps());

    let recorded = golden_digest(&cluster, DEPLOY, SEED);
    let replayed = golden_digest(&cluster, replay, SEED);
    assert!(!recorded.is_empty());
    assert_eq!(
        recorded.len(),
        replayed.len(),
        "replay ended with a different object count: {} vs {}",
        recorded.len(),
        replayed.len()
    );
    for ((rk, rv), (pk, pv)) in recorded.iter().zip(&replayed) {
        assert_eq!(rk, pk, "object sets differ");
        assert_eq!(rv, pv, "object {rk} differs between recorded and replayed run");
    }

    // The golden baseline — built from fresh golden runs of each — must
    // be byte-identical in the bench cache schema, so a trace scenario's
    // z-scores are computed against exactly the source scenario's curve.
    let source = build_baseline_with_threads(&cluster, DEPLOY, 4, SEED, 1);
    let replayed = build_baseline_with_threads(&cluster, replay, 4, SEED, 1);
    assert_eq!(
        mutiny_bench::render_baseline(&source),
        mutiny_bench::render_baseline(&replayed),
        "replayed baseline TSV must be byte-identical to the source scenario's"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exported_trace_survives_registration() {
    // The MUTINY_TRACES path: a directory of exports registers into the
    // scenario registry and behaves like any other member.
    let cluster = ClusterConfig::default();
    let dir = temp_dir("register");
    export_scenario(&cluster, mutiny_scenarios::SCALE_UP, SEED, &dir).expect("export");

    let registered = mutiny_trace::register_traces(&dir).expect("register");
    assert_eq!(registered.len(), 1);
    let sc = registered[0];
    assert_eq!(sc.name(), "trace-scale");
    assert_eq!(mutiny_scenarios::registry::find("trace-scale"), Some(sc));

    // A registered trace scenario runs end to end under the campaign's
    // golden machinery.
    let stats = mutiny_core::golden::run_golden(&cluster, sc, SEED);
    assert_eq!(stats.client_failures(), 0, "trace replay golden run failed");

    std::fs::remove_dir_all(&dir).ok();
}
