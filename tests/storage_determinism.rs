//! Storage-engine determinism wall.
//!
//! The storage backend must be a pure implementation choice: a campaign
//! run on the log-structured engine has to produce a TSV byte-identical
//! to the in-memory engine's, at any worker count. Observable semantics
//! (revisions, watch events, quorum votes, capacity rejections) are
//! defined by the `Etcd` front-end; segments, physical bytes and
//! auto-compactions are telemetry-only differences. This wall keeps the
//! seam honest for every (scenario, family) pair, storage families
//! included.

use k8s_cluster::ClusterConfig;
use k8s_model::Channel;
use mutiny_core::campaign::{
    plan_campaign, record_fields, run_campaign_with_threads_fork, PlannedExperiment,
};
use mutiny_core::golden::build_baseline_with_threads;
use mutiny_core::Scenario;
use mutiny_scenarios::{DEPLOY, FAILOVER, HPA_AUTOSCALE, NODE_DRAIN, ROLLING_UPDATE, SCALE_UP};
use simkit::Rng;
use std::collections::HashMap;

/// One spec per (scenario, family) cross-product plus per-scenario
/// baselines, all built on `cluster` — so the plan itself (recorded
/// traffic, planned offsets) comes from the engine under test.
fn cross_product(
    cluster: &ClusterConfig,
) -> (Vec<PlannedExperiment>, HashMap<Scenario, mutiny_core::golden::Baseline>) {
    let scenarios = [DEPLOY, SCALE_UP, FAILOVER, ROLLING_UPDATE, NODE_DRAIN, HPA_AUTOSCALE];
    let families = mutiny_faults::registry::all();
    let mut rng = Rng::new(11);
    let mut plan = Vec::new();
    let mut baselines = HashMap::new();
    for sc in scenarios {
        let traffic = record_fields(cluster, sc, vec![Channel::ApiToEtcd], 42);
        let full = plan_campaign(&traffic, sc, &families, &mut rng);
        for family in &families {
            if let Some(p) = full.iter().find(|p| p.fault == *family) {
                plan.push(p.clone());
            }
        }
        baselines.insert(sc, build_baseline_with_threads(cluster, sc, 4, 0xBA5E, 1));
    }
    (plan, baselines)
}

#[test]
fn log_backend_tsv_byte_identical_to_mem_across_thread_counts() {
    let mem_cluster = ClusterConfig::default();
    assert_eq!(
        mem_cluster.storage,
        etcd_sim::StorageKind::Mem,
        "this wall assumes the default engine (run it without MUTINY_STORAGE)"
    );
    let mut log_cluster = ClusterConfig::default();
    log_cluster.storage = etcd_sim::StorageKind::Log;

    // Ground truth: the in-memory engine, serial.
    let (mem_plan, mem_baselines) = cross_product(&mem_cluster);
    let mem =
        run_campaign_with_threads_fork(&mem_cluster, &mem_plan, &mem_baselines, 2024, 1, true);
    let mem_tsv = mutiny_bench::render_rows(&mem);
    assert_eq!(mem_tsv.lines().count(), mem_plan.len());
    assert!(
        mem_tsv.contains("etcd-disk-full") && mem_tsv.contains("etcd-inconsistent-view"),
        "storage families missing from the cross-product: {mem_tsv}"
    );

    // The log engine plans from its own recorded traffic — identical
    // planning is part of the byte-identity claim.
    let (log_plan, log_baselines) = cross_product(&log_cluster);
    assert_eq!(mem_plan.len(), log_plan.len(), "engines planned different cross-products");
    for threads in [1usize, 2, 5] {
        let log = run_campaign_with_threads_fork(
            &log_cluster,
            &log_plan,
            &log_baselines,
            2024,
            threads,
            true,
        );
        assert_eq!(
            mem_tsv,
            mutiny_bench::render_rows(&log),
            "log-backend TSV diverged from mem at {threads} thread(s)"
        );
    }
}
