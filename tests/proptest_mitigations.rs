//! Property-based invariants on the mitigation layer: the CRC-32
//! redundancy code, the critical-field catalog, the sealer, and the
//! autoscaler arithmetic.

use k8s_model::{
    Container, HorizontalPodAutoscaler, LabelSelector, Object, ObjectMeta, ReplicaSet,
    INTEGRITY_ANNOTATION,
};
use k8s_apiserver::IntegrityChecker;
use mutiny_mitigations::catalog::{critical_paths, is_critical_path};
use mutiny_mitigations::checksum::{crc32, CriticalFieldSealer};
use proptest::prelude::*;
use protowire::reflect::{Reflect, Value};

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,14}[a-z0-9]".prop_map(|s| s)
}

prop_compose! {
    fn arb_rs()(
        name in arb_name(),
        ns in arb_name(),
        label in arb_name(),
        replicas in 0i64..64,
        image in "[a-z]{1,8}:[0-9]{1,2}",
    ) -> ReplicaSet {
        let mut rs = ReplicaSet::default();
        rs.metadata = ObjectMeta::named(&ns, &name);
        rs.metadata.uid = format!("uid-{name}");
        rs.spec.replicas = replicas;
        rs.spec.selector = LabelSelector::eq("app", &label);
        rs.spec.template.metadata.labels.insert("app".into(), label);
        rs.spec.template.spec.containers.push(Container {
            name: "c".into(),
            image,
            cpu_milli: 100,
            memory_mb: 64,
            ..Default::default()
        });
        rs
    }
}

proptest! {
    /// CRC-32 detects every single-bit error (guaranteed by the
    /// polynomial; this pins our implementation to that guarantee).
    #[test]
    fn crc32_detects_any_single_bit_flip(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        byte in 0usize..128,
        bit in 0u8..8,
    ) {
        let byte = byte % payload.len();
        let mut corrupted = payload.clone();
        corrupted[byte] ^= 1 << bit;
        prop_assert_ne!(crc32(&payload), crc32(&corrupted));
    }

    /// CRC-32 is a pure function of the payload.
    #[test]
    fn crc32_is_deterministic(payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(crc32(&payload), crc32(&payload));
    }

    /// Seal followed by verify always succeeds, for any object shape.
    #[test]
    fn seal_verify_roundtrip(rs in arb_rs()) {
        let sealer = CriticalFieldSealer::default();
        let mut obj = Object::ReplicaSet(rs);
        sealer.seal(&mut obj);
        prop_assert!(sealer.verify(&obj));
    }

    /// Any mutation of any critical field after sealing is detected.
    #[test]
    fn sealed_critical_mutation_always_detected(rs in arb_rs(), pick in any::<prop::sample::Index>()) {
        let sealer = CriticalFieldSealer::default();
        let mut obj = Object::ReplicaSet(rs);
        sealer.seal(&mut obj);
        let criticals = critical_paths(&obj);
        prop_assume!(!criticals.is_empty());
        let (path, value) = &criticals[pick.index(criticals.len())];
        let mutated = match value {
            Value::Int(v) => Value::Int(v ^ 1),
            Value::Str(s) => {
                let mut t = s.clone();
                t.push('x');
                Value::Str(t)
            }
            Value::Bool(b) => Value::Bool(!b),
        };
        prop_assert!(obj.set_field(path, mutated), "set failed for {}", path);
        prop_assert!(!sealer.verify(&obj), "mutation of {} escaped the code", path);
    }

    /// Status mutations (non-critical) never trip the code: controllers
    /// must be able to write status without resealing races.
    #[test]
    fn sealed_status_mutation_passes(rs in arb_rs(), ready in 0i64..64) {
        let sealer = CriticalFieldSealer::default();
        let mut obj = Object::ReplicaSet(rs);
        sealer.seal(&mut obj);
        prop_assert!(obj.set_field("status.readyReplicas", Value::Int(ready)));
        prop_assert!(sealer.verify(&obj));
    }

    /// The catalog is stable (sorted, duplicate-free) and is a strict
    /// subset of the reflected field list.
    #[test]
    fn catalog_is_sorted_subset(rs in arb_rs()) {
        let obj = Object::ReplicaSet(rs);
        let all: std::collections::BTreeSet<String> =
            obj.field_list().into_iter().map(|(p, _)| p).collect();
        let crit = critical_paths(&obj);
        for w in crit.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "not strictly sorted: {} vs {}", w[0].0, w[1].0);
        }
        for (p, _) in &crit {
            prop_assert!(all.contains(p), "{} not a reflected field", p);
        }
        prop_assert!(crit.len() < all.len(), "catalog must be a strict subset");
    }

    /// Dependency-tracking paths are always in the protected subset, and
    /// the integrity annotation itself never is (sealing must not change
    /// its own input).
    #[test]
    fn dependency_paths_always_protected(key in arb_name()) {
        let label_path = format!("metadata.labels['{key}']");
        prop_assert!(is_critical_path(&label_path));
        let selector_path = format!("spec.selector.matchLabels['{key}']");
        prop_assert!(is_critical_path(&selector_path));
        prop_assert!(is_critical_path("metadata.ownerReferences[0].uid"));
        let crc_path = format!("metadata.annotations['{INTEGRITY_ANNOTATION}']");
        prop_assert!(!is_critical_path(&crc_path));
    }

    /// The autoscaler target is always inside the (sanitized) bounds and
    /// monotone in the observed load — for *any* spec, including
    /// corrupted ones.
    #[test]
    fn hpa_desired_is_bounded_and_monotone(
        min in -4i64..20,
        max in -4i64..40,
        target in -4i64..50,
        load_a in -10i64..2_000,
        load_b in -10i64..2_000,
    ) {
        let mut h = HorizontalPodAutoscaler::default();
        h.spec.min_replicas = min;
        h.spec.max_replicas = max;
        h.spec.target_load = target;
        let lo = min.max(1);
        let hi = max.max(lo);
        let a = h.desired_for(load_a);
        prop_assert!(a >= lo && a <= hi, "{a} outside [{lo}, {hi}]");
        let b = h.desired_for(load_b);
        if load_a <= load_b {
            prop_assert!(a <= b, "not monotone: f({load_a})={a} > f({load_b})={b}");
        } else {
            prop_assert!(b <= a, "not monotone: f({load_b})={b} > f({load_a})={a}");
        }
    }

    /// Resealing commutes with legitimate mutation: mutate-then-seal
    /// verifies, in any order of critical/non-critical edits.
    #[test]
    fn reseal_after_any_mutation_verifies(rs in arb_rs(), replicas in 0i64..64, label in arb_name()) {
        let sealer = CriticalFieldSealer::default();
        let mut obj = Object::ReplicaSet(rs);
        sealer.seal(&mut obj);
        obj.set_field("spec.replicas", Value::Int(replicas));
        obj.set_field("spec.template.metadata.labels['app']", Value::Str(label));
        sealer.seal(&mut obj);
        prop_assert!(sealer.verify(&obj));
    }
}
