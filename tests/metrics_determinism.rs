//! Telemetry is observation, not participation: with `MUTINY_METRICS`
//! set, every counter/gauge/histogram/timeline rides the run without
//! touching the RNG, the event order, or a single allocation the
//! simulation branches on — so the campaign TSV must not change by one
//! byte, at any worker count. This file is its own test binary (own
//! process), so flipping the environment toggle here cannot race with
//! the other determinism tests.

use k8s_cluster::ClusterConfig;
use k8s_model::Channel;
use mutiny_core::campaign::{
    generate_plan, record_fields, run_campaign_with_threads, PlannedExperiment,
};
use mutiny_core::golden::build_baseline_with_threads;
use mutiny_scenarios::DEPLOY;
use simkit::Rng;
use std::collections::HashMap;

#[test]
fn campaign_tsv_identical_with_metrics_on_and_off() {
    assert!(
        std::env::var(mutiny_telemetry::METRICS_ENV).is_err(),
        "test owns MUTINY_METRICS; unset it before running"
    );
    assert!(
        std::env::var(mutiny_telemetry::profile::PROFILE_ENV).is_err(),
        "test owns MUTINY_PROFILE; unset it before running"
    );

    // A fault-diverse slice of the deploy plan, so the instrumented
    // paths all fire: wire verdict counters (drops/replaces), deferred
    // queue high-water (delays), workqueue depth/wait histograms, and
    // the injection→detection timeline milestones.
    let cluster = ClusterConfig::default();
    let traffic = record_fields(&cluster, DEPLOY, vec![Channel::ApiToEtcd], 42);
    let mut rng = Rng::new(7);
    let full = generate_plan(&traffic, DEPLOY, &mut rng);
    let stride = (full.len() / 8).max(1);
    let plan: Vec<PlannedExperiment> = full.into_iter().step_by(stride).take(8).collect();
    assert!(plan.len() >= 6, "plan too small to be meaningful");

    let mut baselines = HashMap::new();
    baselines.insert(
        DEPLOY,
        build_baseline_with_threads(&cluster, DEPLOY, 4, 0xBA5E, 1),
    );

    // Reference: metrics off (the default), one worker.
    let off = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, 1);
    let off_tsv = mutiny_bench::render_rows(&off);

    // Metrics on: byte-identical TSV at 1, 2 and 5 workers. The export
    // path is never invoked here, so no file appears at the target.
    let export_target = std::env::temp_dir().join("mutiny_metrics_determinism_unused.json");
    std::env::set_var(mutiny_telemetry::METRICS_ENV, &export_target);
    mutiny_telemetry::reset();
    mutiny_telemetry::profile::reset();
    for threads in [1usize, 2, 5] {
        let on = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, threads);
        assert_eq!(
            off_tsv,
            mutiny_bench::render_rows(&on),
            "MUTINY_METRICS changed the TSV at {threads} threads"
        );
    }
    std::env::remove_var(mutiny_telemetry::METRICS_ENV);

    // Non-vacuity: the instrumented runs must actually have recorded —
    // a telemetry layer that never fires would make the identity above
    // meaningless. Workers flush into the process sink on completion.
    let fired = mutiny_telemetry::counter_value("fault.fired").unwrap_or(0);
    assert!(fired > 0, "no injection fired during the instrumented runs");
    let requests: u64 = ["etcd", "kcm", "scheduler", "kubelet", "user"]
        .iter()
        .filter_map(|c| mutiny_telemetry::counter_value(&format!("apiserver.request.{c}.ok")))
        .sum();
    assert!(requests > 0, "no apiserver request counters recorded");
    assert!(
        !mutiny_telemetry::timeline::sorted_records().is_empty(),
        "no propagation timelines recorded"
    );
}

#[test]
fn exported_json_round_trips_through_the_schema_validator() {
    // Schema check on a representative export rendered in-process: the
    // validator must accept exactly what `render_json` emits.
    let rendered = mutiny_telemetry::export::render_json();
    let parsed = mutiny_telemetry::export::parse(&rendered).expect("export must parse");
    mutiny_telemetry::export::validate(&parsed).expect("export must satisfy its own schema");
}
