//! End-to-end autoscaler scenarios: the HorizontalPodAutoscaler extension
//! and the paper's *Wrong Autoscale Trigger* fault class (Table I(a) —
//! "autoscaling of Pods or Nodes is based on misleading information").

use mutiny_lab::prelude::*;
use k8s_model::HorizontalPodAutoscaler;
use std::cell::RefCell;
use std::rc::Rc;

fn hpa_world(seed: u64, interceptor: k8s_apiserver::InterceptorHandle) -> World {
    let mut cfg = ClusterConfig { seed, ..ClusterConfig::default() };
    cfg.net.publish_metrics = true;
    let mut world = World::new(cfg, interceptor);
    world.prepare(DEPLOY.preinstalled_apps());
    let mut hpa = HorizontalPodAutoscaler::default();
    hpa.metadata = k8s_model::ObjectMeta::named("default", "web-1-hpa");
    hpa.spec.scale_target = "web-1".into();
    // minReplicas matches the deployed size, so the idle pre-workload
    // phase takes no scale action (and spends no cooldown).
    hpa.spec.min_replicas = 2;
    hpa.spec.max_replicas = 8;
    hpa.spec.target_load = 5;
    world
        .api
        .create(Channel::UserToApi, Object::HorizontalPodAutoscaler(hpa))
        .expect("create hpa");
    world
}

fn noop() -> k8s_apiserver::InterceptorHandle {
    Rc::new(RefCell::new(k8s_model::NoopInterceptor))
}

/// Steps the world to the horizon, recording the replica extremes of
/// web-1 while the client load is active.
fn run_tracking_replicas(world: &mut World) -> (i64, i64) {
    let (mut lo, mut hi) = (i64::MAX, i64::MIN);
    let load_end = world.t0() + 30_000;
    world.schedule_ops(DEPLOY.ops());
    while world.now() < world.horizon() {
        let next = (world.now() + 500).min(world.horizon());
        world.run_until(next);
        if world.now() > world.t0() + 10_000 && world.now() <= load_end {
            if let Some(Object::Deployment(d)) = world.api.get(Kind::Deployment, "default", "web-1").as_deref()
            {
                lo = lo.min(d.spec.replicas);
                hi = hi.max(d.spec.replicas);
            }
        }
    }
    (lo, hi)
}

#[test]
fn autoscaler_follows_the_client_load() {
    // 20 rps at 5 rps per replica → 4 replicas while the client is active,
    // back towards minReplicas once the load stops.
    let mut world = hpa_world(61, noop());
    let (lo, hi) = run_tracking_replicas(&mut world);
    assert_eq!(hi, 4, "expected scale-up to ceil(20/5)=4");
    assert!(lo >= 2, "never below minReplicas");
    assert!(world.kcm.metrics.hpa_scalings >= 1, "no scale action recorded");
    // After 45 s without load the controller returns to the minimum.
    if let Some(Object::Deployment(d)) = world.api.get(Kind::Deployment, "default", "web-1").as_deref() {
        assert_eq!(d.spec.replicas, 2, "scale-down after load stops");
    }
    // The status subresource reflects what the controller observed (F4:
    // operators must be able to see the divergence source).
    if let Some(Object::HorizontalPodAutoscaler(h)) =
        world.api.get(Kind::HorizontalPodAutoscaler, "default", "web-1-hpa").as_deref()
    {
        assert!(h.status.last_scale_time > 0);
        assert!(h.status.desired_replicas >= 1);
    }
    assert_eq!(world.stats.client_failures(), 0, "autoscaling must not drop requests");
}

#[test]
fn inflated_metric_overprovisions_the_service() {
    // Wrong Autoscale Trigger, MoR flavour: one corrupted metric value
    // (999 rps) makes the controller scale to maxReplicas. The next
    // metrics publish overwrites the corruption — the paper's overwrite
    // recovery — but the cooldown keeps the overprovisioning around.
    let spec = InjectionSpec {
        channel: Channel::ApiToEtcd.into(),
        kind: Kind::ConfigMap,
        point: InjectionPoint::Field {
            path: "data['default/web-1-svc']".into(),
            mutation: FieldMutation::Set(Value::Str("999".into())),
        },
        occurrence: 1,
    };
    let mutiny = Rc::new(RefCell::new(Mutiny::armed_from(spec, k8s_cluster::WORKLOAD_START_MS)));
    let handle: k8s_apiserver::InterceptorHandle = mutiny.clone();
    let mut world = hpa_world(62, handle);
    let (_, hi) = run_tracking_replicas(&mut world);
    assert!(mutiny.borrow().fired(), "metric injection never fired");
    assert_eq!(hi, 8, "corrupted metric must drive the target to maxReplicas");
}

#[test]
fn zeroed_target_load_pins_the_service_to_minimum() {
    // Wrong Autoscale Trigger, LeR flavour: the HPA's own spec is
    // corrupted in the store (targetLoadPerReplica = 0) by the write that
    // recorded the first scale-up. Unlike the metric, nothing rewrites
    // the spec, so once the cooldown expires the controller drags the
    // service back to minReplicas and pins it there under full load. The
    // user-channel validation would have rejected the value — the store
    // channel bypasses it (Table VI).
    let spec = InjectionSpec {
        channel: Channel::ApiToEtcd.into(),
        kind: Kind::HorizontalPodAutoscaler,
        point: InjectionPoint::Field {
            path: "spec.targetLoadPerReplica".into(),
            mutation: FieldMutation::Set(Value::Int(0)),
        },
        occurrence: 1,
    };
    let mutiny = Rc::new(RefCell::new(Mutiny::armed_from(spec, k8s_cluster::WORKLOAD_START_MS)));
    let handle: k8s_apiserver::InterceptorHandle = mutiny.clone();
    let mut world = hpa_world(63, handle);
    world.schedule_ops(DEPLOY.ops());
    // Replicas over the last ten seconds of the load phase: the brief
    // pre-corruption scale-up has been clawed back by then.
    let load_end = world.t0() + 30_000;
    let mut tail_replicas = Vec::new();
    while world.now() < world.horizon() {
        let next = (world.now() + 500).min(world.horizon());
        world.run_until(next);
        if world.now() > load_end - 10_000 && world.now() <= load_end {
            if let Some(Object::Deployment(d)) =
                world.api.get(Kind::Deployment, "default", "web-1").as_deref()
            {
                tail_replicas.push(d.spec.replicas);
            }
        }
    }
    assert!(mutiny.borrow().fired(), "spec injection never fired");
    assert!(tail_replicas.len() >= 4);
    // The claw-back lands one scale-cooldown plus one resync after the
    // corrupted scale-up; by the end of the load phase the service must
    // be under-provisioned (and stay there — nothing rewrites the spec).
    let end = &tail_replicas[tail_replicas.len() - 3..];
    assert!(
        end.iter().all(|&r| r == 2),
        "service must end the load phase pinned at minReplicas: {tail_replicas:?}"
    );
    assert!(
        tail_replicas.iter().any(|&r| r > 2),
        "the pre-corruption scale-up should be visible: {tail_replicas:?}"
    );
}

#[test]
fn user_channel_rejects_invalid_hpa_specs() {
    // The same values the store-channel injections smuggle in are denied
    // at the API boundary (the §V-C4 validation asymmetry).
    let mut world = hpa_world(64, noop());
    let mut bad = HorizontalPodAutoscaler::default();
    bad.metadata = k8s_model::ObjectMeta::named("default", "bad-hpa");
    bad.spec.scale_target = "web-1".into();
    bad.spec.min_replicas = 0; // scale-to-zero
    bad.spec.max_replicas = 8;
    bad.spec.target_load = 5;
    assert!(world
        .api
        .create(Channel::UserToApi, Object::HorizontalPodAutoscaler(bad.clone()))
        .is_err());
    bad.spec.min_replicas = 4;
    bad.spec.max_replicas = 2; // inverted bounds
    assert!(world
        .api
        .create(Channel::UserToApi, Object::HorizontalPodAutoscaler(bad.clone()))
        .is_err());
    bad.spec.max_replicas = 8;
    bad.spec.target_load = 0; // division trap
    assert!(world
        .api
        .create(Channel::UserToApi, Object::HorizontalPodAutoscaler(bad))
        .is_err());
}

#[test]
fn autoscale_outcomes_are_deterministic() {
    let run = |seed| {
        let mut world = hpa_world(seed, noop());
        let extremes = run_tracking_replicas(&mut world);
        (extremes, world.kcm.metrics.hpa_scalings)
    };
    assert_eq!(run(65), run(65));
}
