//! A missing (or corrupt-and-discarded) baseline must not abort the
//! whole campaign: the affected scenario's rows are skipped with a
//! warning — a typed [`CampaignError::MissingBaseline`], not the old
//! `.expect("baseline for every planned scenario")` panic.

use k8s_cluster::ClusterConfig;
use k8s_model::Channel;
use mutiny_core::campaign::{
    plan_campaign, record_fields, run_campaign_with_threads, CampaignError, PlannedExperiment,
};
use mutiny_core::golden::build_baseline_with_threads;
use mutiny_faults::WIRE_BUILTIN;
use mutiny_scenarios::{DEPLOY, SCALE_UP};
use simkit::Rng;
use std::collections::HashMap;

fn first_specs(cluster: &ClusterConfig, sc: mutiny_core::Scenario) -> Vec<PlannedExperiment> {
    let traffic = record_fields(cluster, sc, vec![Channel::ApiToEtcd], 42);
    let mut rng = Rng::new(7);
    plan_campaign(&traffic, sc, &WIRE_BUILTIN, &mut rng).into_iter().take(3).collect()
}

#[test]
fn missing_baseline_skips_the_scenario_instead_of_panicking() {
    let cluster = ClusterConfig::default();
    let mut plan = first_specs(&cluster, DEPLOY);
    let deploy_rows = plan.len();
    plan.extend(first_specs(&cluster, SCALE_UP));

    // Baseline present for deploy only: scale's rows must be skipped,
    // deploy's must come through untouched.
    let mut baselines = HashMap::new();
    baselines.insert(DEPLOY, build_baseline_with_threads(&cluster, DEPLOY, 4, 0xBA5E, 1));
    let partial = run_campaign_with_threads(&cluster, &plan, &baselines, 2024, 2);
    assert_eq!(partial.len(), deploy_rows);
    assert!(partial.rows.iter().all(|r| r.scenario == DEPLOY));

    // The error type names the scenario, so the warning is actionable.
    let err = CampaignError::MissingBaseline { scenario: SCALE_UP.name().to_string() };
    let msg = err.to_string();
    assert!(msg.contains("scale"), "error message must name the scenario: {msg}");
    assert!(msg.contains("baseline"), "error message must say what is missing: {msg}");
}
