//! End-to-end mitigation regressions: each test replays one of the
//! paper's flagship failure scenarios with a §VI-B defense enabled and
//! asserts the failure is neutralized (and, separately, that the defense
//! stays silent on healthy runs — `k8s-cluster` owns that golden check).

use mutiny_lab::prelude::*;
use std::sync::OnceLock;

fn baseline_for(mitigations: MitigationsConfig) -> mutiny_core::Baseline {
    let cfg = ClusterConfig { mitigations, ..ClusterConfig::default() };
    mutiny_core::build_baseline(&cfg, DEPLOY, 8, 7)
}

fn plain_baseline() -> &'static mutiny_core::Baseline {
    static B: OnceLock<mutiny_core::Baseline> = OnceLock::new();
    B.get_or_init(|| baseline_for(MitigationsConfig::default()))
}

/// The paper's flagship injection: one corrupted character in the stored
/// pod-template label of a ReplicaSet, post-validation.
fn storm_spec() -> InjectionSpec {
    InjectionSpec {
        channel: Channel::ApiToEtcd.into(),
        kind: Kind::ReplicaSet,
        point: InjectionPoint::Field {
            path: "spec.template.metadata.labels['app']".into(),
            mutation: FieldMutation::FlipStringChar(0),
        },
        occurrence: 1,
    }
}

/// The cfg-selector config defect: the ReplicaSet is admitted with a
/// typo'd pod-template label its selector never matches.
fn selector_defect_spec() -> InjectionSpec {
    InjectionSpec {
        channel: Channel::KcmToApi.into(),
        kind: Kind::ReplicaSet,
        point: InjectionPoint::Config { defect: "selector".into(), param: 0 },
        occurrence: 1,
    }
}

fn run_with(mitigations: MitigationsConfig, spec: InjectionSpec, seed: u64) -> ExperimentOutcome {
    let baseline = baseline_for(mitigations.clone());
    let cluster = ClusterConfig { seed, mitigations, ..ClusterConfig::default() };
    let cfg = ExperimentConfig { cluster, scenario: DEPLOY, injection: Some(mutiny_core::ArmedFault::implied(spec)) };
    mutiny_core::campaign::run_experiment_with_baseline(&cfg, &baseline)
}

#[test]
fn integrity_code_neutralizes_template_label_corruption() {
    // Redundancy codes on critical fields (§VI-B): the corrupted label is
    // detected on decode and rolled back to the last good value; no storm.
    let out = run_with(
        MitigationsConfig { integrity: true, ..Default::default() },
        storm_spec(),
        41,
    );
    assert!(
        matches!(out.orchestrator_failure, OrchestratorFailure::No | OrchestratorFailure::Tim),
        "integrity should absorb the corruption entirely, got {out:?}"
    );
    // A golden deploy run creates ~21 pods (system DaemonSets + coreDNS +
    // prometheus + the app); anything close to that means no storm.
    assert!(out.pods_created < 30, "no storm expected, got {} pods", out.pods_created);
}

#[test]
fn breaker_bounds_the_replication_storm() {
    // Without defenses the storm creates hundreds of pods (see
    // failure_scenarios); the circuit breaker must suspend the runaway
    // ReplicaSet within one window and keep the pod count bounded.
    let unmitigated = {
        let cfg = ExperimentConfig {
            cluster: ClusterConfig { seed: 42, ..ClusterConfig::default() },
            scenario: DEPLOY,
            injection: Some(mutiny_core::ArmedFault::implied(storm_spec())),
        };
        mutiny_core::campaign::run_experiment_with_baseline(&cfg, plain_baseline())
    };
    let mitigated = run_with(
        MitigationsConfig { breaker: true, ..Default::default() },
        storm_spec(),
        42,
    );
    assert!(
        unmitigated.pods_created > 3 * mitigated.pods_created,
        "breaker should cut the storm by well over 3x: {} vs {}",
        unmitigated.pods_created,
        mitigated.pods_created
    );
    assert_ne!(
        mitigated.orchestrator_failure,
        OrchestratorFailure::Out,
        "a tripped breaker must prevent the outage: {mitigated:?}"
    );
}

#[test]
fn all_defenses_neutralize_the_storm() {
    let out = run_with(MitigationsConfig::all(), storm_spec(), 43);
    assert!(
        !out.orchestrator_failure.is_system_wide(),
        "combined defenses must prevent Sta/Out, got {out:?}"
    );
    assert!(out.pods_created < 40, "storm persisted: {} pods", out.pods_created);
}

#[test]
fn integrity_repairs_service_selector_corruption() {
    // The Net/SU scenario of failure_scenarios: a corrupted Service
    // selector empties the endpoints. With redundancy codes installed the
    // at-decode verification restores the stored selector, so the client
    // keeps being served.
    let mitigations = MitigationsConfig { integrity: true, ..Default::default() };
    let baseline = baseline_for(mitigations.clone());
    let cluster = ClusterConfig { seed: 44, mitigations, ..ClusterConfig::default() };
    let mutiny = std::rc::Rc::new(std::cell::RefCell::new(Mutiny::disarmed()));
    let handle: k8s_apiserver::InterceptorHandle = mutiny;
    let mut world = World::new(cluster, handle);
    world.prepare(DEPLOY.preinstalled_apps());
    // Corrupt the stored bytes *after* sealing (the campaign's in-flight
    // model): the stale redundancy code no longer matches the selector.
    if let Some(Object::Service(svc)) = world.api.get(Kind::Service, "default", "web-1-svc").as_deref() {
        let mut svc = svc.clone();
        svc.spec.selector.insert("app".into(), "veb-1".into());
        let key = Object::Service(svc.clone()).key();
        world.api.etcd_mut().put(&key, Object::Service(svc).encode()).unwrap();
    } else {
        panic!("client service missing after setup");
    }
    world.schedule_ops(DEPLOY.ops());
    world.run_to_horizon();
    let (cf, _) = mutiny_core::classify::classify_client(&world.stats, &baseline);
    assert_ne!(cf, ClientFailure::Su, "integrity must keep the service reachable");
    assert!(world.api.integrity_metrics.violations >= 1, "violation not even detected");
}

#[test]
fn policy_denies_coredns_scale_to_zero() {
    // §VI-B verbatim: "scaling of coreDNS to 0 should be denied".
    let cluster = ClusterConfig {
        seed: 45,
        mitigations: MitigationsConfig { policies: true, ..Default::default() },
        ..ClusterConfig::default()
    };
    let mutiny = std::rc::Rc::new(std::cell::RefCell::new(Mutiny::disarmed()));
    let handle: k8s_apiserver::InterceptorHandle = mutiny;
    let mut world = World::new(cluster, handle);
    world.prepare(DEPLOY.preinstalled_apps());

    let Some(dns_obj) = world.api.get(Kind::Deployment, "kube-system", "coredns") else {
        panic!("coredns deployment missing");
    };
    let Object::Deployment(dns) = &*dns_obj else { panic!("not a deployment") };
    let mut dns = dns.clone();
    dns.spec.replicas = 0;
    let res = world.api.update(Channel::UserToApi, Object::Deployment(dns));
    assert!(res.is_err(), "scale-to-zero must be denied");
    assert!(world.api.policy_denials >= 1);

    let res = world.api.delete(Channel::UserToApi, Kind::Deployment, "kube-system", "coredns");
    assert!(res.is_err(), "deleting coreDNS must be denied");
}

#[test]
fn policy_rejects_unbounded_pods_and_oversized_workloads() {
    let cluster = ClusterConfig {
        seed: 46,
        mitigations: MitigationsConfig { policies: true, ..Default::default() },
        ..ClusterConfig::default()
    };
    let mutiny = std::rc::Rc::new(std::cell::RefCell::new(Mutiny::disarmed()));
    let handle: k8s_apiserver::InterceptorHandle = mutiny;
    let mut world = World::new(cluster, handle);
    world.prepare(DEPLOY.preinstalled_apps());

    // A pod without resource requests (the overload class of Table I).
    let mut pod = k8s_model::Pod::default();
    pod.metadata = k8s_model::ObjectMeta::named("default", "unbounded");
    pod.spec.containers.push(k8s_model::Container {
        name: "c".into(),
        image: "img:1".into(),
        ..Default::default()
    });
    assert!(world.api.create(Channel::UserToApi, Object::Pod(pod)).is_err());

    // A deployment demanding more replicas than the cluster ceiling.
    let mut huge = k8s_cluster::app_deployment(9, 2, false);
    huge.spec.replicas = 500;
    assert!(world.api.create(Channel::UserToApi, Object::Deployment(huge)).is_err());
}

#[test]
fn guard_journals_silent_store_corruption() {
    // F4: the user gets no error, but the guard's journal records the
    // divergence — the paper's "log changes to labels that can cause
    // critical failures".
    let out = run_with(
        MitigationsConfig { guard: true, ..Default::default() },
        storm_spec(),
        47,
    );
    assert!(!out.user_saw_error, "store-channel injection is silent to the user");
    // The guard lives inside the experiment world, so assert indirectly:
    // rerun manually for journal access.
    let cluster = ClusterConfig {
        seed: 47,
        mitigations: MitigationsConfig { guard: true, ..Default::default() },
        ..ClusterConfig::default()
    };
    // Occurrence 2: the corruption lands on the ReplicaSet's first
    // *update*, so the guard has a pre-change snapshot to diff against
    // (creates have no previous value to journal).
    let mut spec = storm_spec();
    spec.occurrence = 2;
    let mutiny = std::rc::Rc::new(std::cell::RefCell::new(Mutiny::armed_from(
        spec,
        k8s_cluster::WORKLOAD_START_MS,
    )));
    let handle: k8s_apiserver::InterceptorHandle = mutiny.clone();
    let mut world = World::new(cluster, handle);
    world.prepare(DEPLOY.preinstalled_apps());
    world.schedule_ops(DEPLOY.ops());
    world.run_to_horizon();
    assert!(mutiny.borrow().fired(), "injection never fired");
    let guard = world.guard.as_ref().expect("guard enabled");
    assert!(
        guard
            .journal()
            .iter()
            .any(|rec| rec.changes.iter().any(|(p, _, _)| p.contains("labels['app']"))),
        "guard journal must record the corrupted label"
    );
}

#[test]
fn validating_admission_neutralizes_config_defects() {
    // The PR's close-the-loop test: the cfg-selector defect (template
    // label typo'd at admission) causes an orphan-pod spawn storm when
    // unmitigated (see failure_scenarios), but the validating-admission
    // policy repairs the template from the still-intact selector before
    // the spec is stored, so the run is indistinguishable from golden.
    let unmitigated = {
        let cfg = ExperimentConfig {
            cluster: ClusterConfig { seed: 49, ..ClusterConfig::default() },
            scenario: DEPLOY,
            injection: Some(mutiny_core::ArmedFault::implied(selector_defect_spec())),
        };
        mutiny_core::campaign::run_experiment_with_baseline(&cfg, plain_baseline())
    };
    let defended = run_with(
        MitigationsConfig { validating: true, ..Default::default() },
        selector_defect_spec(),
        49,
    );
    assert!(
        unmitigated.orchestrator_failure.is_system_wide(),
        "cfg-selector should storm when unmitigated, got {unmitigated:?}"
    );
    assert_eq!(
        defended.orchestrator_failure,
        OrchestratorFailure::No,
        "validating admission must repair the selector defect: {defended:?}"
    );
    assert_eq!(defended.client_failure, ClientFailure::Nsi, "{defended:?}");
    assert!(
        unmitigated.pods_created > 3 * defended.pods_created,
        "repair should eliminate the spawn storm: {} vs {}",
        unmitigated.pods_created,
        defended.pods_created
    );
}

#[test]
fn defenses_do_not_change_clean_experiment_outcomes() {
    // A benign injection (absorbed by overwrite recovery) must classify
    // identically with and without defenses.
    let spec = InjectionSpec {
        channel: Channel::ApiToEtcd.into(),
        kind: Kind::ReplicaSet,
        point: InjectionPoint::Field {
            path: "spec.replicas".into(),
            mutation: FieldMutation::FlipIntBit(0),
        },
        occurrence: 1,
    };
    let plain = {
        let cfg = ExperimentConfig {
            cluster: ClusterConfig { seed: 48, ..ClusterConfig::default() },
            scenario: DEPLOY,
            injection: Some(mutiny_core::ArmedFault::implied(spec.clone())),
        };
        mutiny_core::campaign::run_experiment_with_baseline(&cfg, plain_baseline())
    };
    let defended = run_with(MitigationsConfig { breaker: true, ..Default::default() }, spec, 48);
    assert_eq!(plain.client_failure, defended.client_failure);
    assert!(
        !defended.orchestrator_failure.is_system_wide(),
        "benign injection escalated: {defended:?}"
    );
}
