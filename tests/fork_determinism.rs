//! Fork-the-world determinism wall.
//!
//! Forked execution (snapshot the world at `t0`, fork per experiment)
//! must be a pure optimization: the campaign TSV has to be byte-identical
//! to replay execution (`MUTINY_FORK=0`, golden prefix re-run from `t=0`)
//! at any worker count. Likewise residue-class sharding: running the
//! shards of a plan separately and round-robin-merging their TSVs must
//! reproduce the unsharded TSV byte for byte. Both identities hold by
//! construction — per-experiment seeds derive from the (scenario, spec),
//! never from the plan index or execution mode — and this wall keeps
//! them held.

use k8s_cluster::ClusterConfig;
use k8s_model::Channel;
use mutiny_core::campaign::{
    plan_campaign, record_fields, run_campaign_with_threads_fork, PlannedExperiment,
};
use mutiny_core::golden::build_baseline_with_threads;
use mutiny_core::Scenario;
use mutiny_scenarios::{DEPLOY, FAILOVER, HPA_AUTOSCALE, NODE_DRAIN, ROLLING_UPDATE, SCALE_UP};
use simkit::Rng;
use std::collections::HashMap;

/// One spec per (scenario, family) over the full 6×18 cross-product,
/// with baselines for every scenario.
fn cross_product_plan(
    cluster: &ClusterConfig,
) -> (Vec<PlannedExperiment>, HashMap<Scenario, mutiny_core::golden::Baseline>) {
    let scenarios = [DEPLOY, SCALE_UP, FAILOVER, ROLLING_UPDATE, NODE_DRAIN, HPA_AUTOSCALE];
    let families = mutiny_faults::registry::all();
    assert!(families.len() >= 18);
    let mut rng = Rng::new(11);
    let mut plan = Vec::new();
    let mut baselines = HashMap::new();
    for sc in scenarios {
        let traffic = record_fields(cluster, sc, vec![Channel::ApiToEtcd], 42);
        let full = plan_campaign(&traffic, sc, &families, &mut rng);
        for family in &families {
            if let Some(p) = full.iter().find(|p| p.fault == *family) {
                plan.push(p.clone());
            }
        }
        baselines.insert(sc, build_baseline_with_threads(cluster, sc, 4, 0xBA5E, 1));
    }
    // 6 scenarios × ≥18 families minus the four unreachable
    // (workload-defect × preinstalled-scenario) combinations.
    assert!(plan.len() >= 6 * 18 - 4, "cross-product too small: {}", plan.len());
    (plan, baselines)
}

#[test]
fn forked_tsv_byte_identical_to_replay_across_thread_counts() {
    let cluster = ClusterConfig::default();
    let (plan, baselines) = cross_product_plan(&cluster);

    // The ground truth: replay execution, serial.
    let replay = run_campaign_with_threads_fork(&cluster, &plan, &baselines, 2024, 1, false);
    let replay_tsv = mutiny_bench::render_rows(&replay);
    assert_eq!(replay_tsv.lines().count(), plan.len());

    for threads in [1usize, 2, 5] {
        let forked =
            run_campaign_with_threads_fork(&cluster, &plan, &baselines, 2024, threads, true);
        assert_eq!(
            replay_tsv,
            mutiny_bench::render_rows(&forked),
            "forked TSV diverged from replay at {threads} thread(s)"
        );
    }
}

#[test]
fn log_backend_fork_byte_identical_to_replay() {
    // Fork-the-world must stay a pure optimization on the log-structured
    // engine too: its fork() is refcount bumps over sealed segments and
    // the index, and forked children must replay byte-identically.
    let mut cluster = ClusterConfig::default();
    cluster.storage = etcd_sim::StorageKind::Log;
    let (plan, baselines) = cross_product_plan(&cluster);

    let replay = run_campaign_with_threads_fork(&cluster, &plan, &baselines, 2024, 1, false);
    let replay_tsv = mutiny_bench::render_rows(&replay);
    assert_eq!(replay_tsv.lines().count(), plan.len());

    let forked = run_campaign_with_threads_fork(&cluster, &plan, &baselines, 2024, 2, true);
    assert_eq!(
        replay_tsv,
        mutiny_bench::render_rows(&forked),
        "log-backend forked TSV diverged from replay"
    );
}

#[test]
fn two_shard_merge_byte_identical_to_unsharded() {
    let cluster = ClusterConfig::default();
    let (plan, baselines) = cross_product_plan(&cluster);

    let unsharded = run_campaign_with_threads_fork(&cluster, &plan, &baselines, 2024, 2, true);
    let unsharded_tsv = mutiny_bench::render_rows(&unsharded);

    // Residue classes of the same plan: shard i runs indices ≡ i (mod 2).
    let mut shard_tsvs = Vec::new();
    for i in 0..2usize {
        let shard: Vec<PlannedExperiment> = plan
            .iter()
            .enumerate()
            .filter(|(idx, _)| idx % 2 == i)
            .map(|(_, p)| p.clone())
            .collect();
        let res = run_campaign_with_threads_fork(&cluster, &shard, &baselines, 2024, 2, true);
        shard_tsvs.push(mutiny_bench::render_rows(&res));
    }
    let refs: Vec<&str> = shard_tsvs.iter().map(String::as_str).collect();
    let merged = mutiny_bench::merge_shard_texts(&refs).expect("consistent shards");
    assert_eq!(unsharded_tsv, merged, "two-shard merge diverged from unsharded TSV");

    // Inconsistent shard sizes are detected, not silently mismerged.
    // (Dropping a row from shard 0 makes the sizes impossible for any
    // round-robin partition: shard 0 must hold ⌈total/n⌉ rows.)
    let truncated: String =
        shard_tsvs[0].lines().skip(1).map(|l| format!("{l}\n")).collect();
    assert!(mutiny_bench::merge_shard_texts(&[&truncated, &shard_tsvs[1]]).is_none());
}

#[test]
fn shard_plan_honors_the_env_residue_class() {
    // `shard_plan` is the only env-coupled piece; pin its filtering
    // against a manual residue-class split. Set/remove the variable
    // inside one test so parallel tests in this binary never see it.
    let cluster = ClusterConfig::default();
    let traffic = record_fields(&cluster, DEPLOY, vec![Channel::ApiToEtcd], 42);
    let mut rng = Rng::new(7);
    let full = plan_campaign(&traffic, DEPLOY, &mutiny_faults::WIRE_BUILTIN, &mut rng);
    assert!(full.len() >= 10);

    std::env::set_var("MUTINY_SHARD", "1/3");
    let sharded = mutiny_bench::shard_plan(full.clone());
    std::env::remove_var("MUTINY_SHARD");

    let manual: Vec<&PlannedExperiment> =
        full.iter().enumerate().filter(|(i, _)| i % 3 == 1).map(|(_, p)| p).collect();
    assert_eq!(sharded.len(), manual.len());
    for (s, m) in sharded.iter().zip(manual) {
        assert_eq!(format!("{:?}", s.spec), format!("{:?}", m.spec));
    }
}
