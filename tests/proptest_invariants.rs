//! Property-based invariants on the wire codec, the reflection layer, the
//! store, and the injector — the surfaces a corruption campaign leans on
//! hardest.

use k8s_model::{ChannelClass, ChannelId, Container, Kind, Object, ObjectMeta, Pod, ReplicaSet};
use proptest::prelude::*;
use protowire::reflect::{Reflect, Value};
use protowire::Message;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,14}[a-z0-9]".prop_map(|s| s)
}

fn arb_labels() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec((arb_name(), arb_name()), 0..4)
}

prop_compose! {
    fn arb_pod()(
        name in arb_name(),
        ns in arb_name(),
        labels in arb_labels(),
        node in proptest::option::of(arb_name()),
        cpu in 0i64..16_000,
        mem in 0i64..32_768,
        port in 0i64..65_536,
        priority in 0i64..2_000_002_000,
        phase in prop_oneof![Just(""), Just("Pending"), Just("Running"), Just("Failed")],
        ready in any::<bool>(),
        restart_count in 0i64..1000,
    ) -> Pod {
        let mut p = Pod::default();
        p.metadata = ObjectMeta::named(&ns, &name);
        for (k, v) in labels {
            p.metadata.labels.insert(k, v);
        }
        p.spec.node_name = node.unwrap_or_default();
        p.spec.priority = priority;
        p.spec.containers.push(Container {
            name: "c".into(),
            image: "registry.local/app:1".into(),
            command: vec!["serve".into()],
            cpu_milli: cpu,
            memory_mb: mem,
            port,
            ..Default::default()
        });
        p.status.phase = phase.into();
        p.status.ready = ready;
        p.status.restart_count = restart_count;
        p
    }
}

fn arb_channel_class() -> impl Strategy<Value = ChannelClass> {
    any::<u64>().prop_map(|i| ChannelClass::ALL[(i % ChannelClass::ALL.len() as u64) as usize])
}

fn arb_channel_id() -> impl Strategy<Value = ChannelId> {
    (arb_channel_class(), proptest::option::of(arb_name())).prop_map(|(class, node)| {
        // A node identity is only valid on a per-node class; `parse`
        // rejects `@node` suffixes elsewhere by design.
        match node {
            Some(node) if class.per_node() => ChannelId::node_scoped(class, &node),
            _ => ChannelId::class_wide(class),
        }
    })
}

proptest! {
    /// `ChannelClass` Display ↔ parse is the identity — the campaign TSV
    /// cache and every `MUTINY_*` filter key on these strings.
    #[test]
    fn channel_class_display_parse_roundtrip(class in arb_channel_class()) {
        prop_assert_eq!(ChannelClass::parse(&class.to_string()), Some(class));
    }

    /// `ChannelId` Display ↔ parse is the identity for class-wide ids
    /// (the historical cache format, no `@node` suffix) and node-scoped
    /// ids alike, for any valid node name.
    #[test]
    fn channel_id_display_parse_roundtrip(id in arb_channel_id()) {
        let rendered = id.to_string();
        // Class-wide ids render exactly like the bare class, so every
        // pre-node TSV cache key is unchanged.
        if id.node().is_none() {
            prop_assert_eq!(&rendered, &id.class().to_string());
        }
        prop_assert_eq!(ChannelId::parse(&rendered), Some(id));
    }
}

proptest! {
    /// Encoding and decoding a pod is the identity.
    #[test]
    fn pod_wire_roundtrip(pod in arb_pod()) {
        let bytes = pod.encode();
        let back = Pod::decode(&bytes).unwrap();
        prop_assert_eq!(back, pod);
    }

    /// Decoding corrupted bytes never panics — it either produces some
    /// object or a clean error (the "undecryptable" path).
    #[test]
    fn corrupted_bytes_never_panic(pod in arb_pod(), idx in 0usize..512, bit in 0u8..8) {
        let bytes = pod.encode();
        let corrupted = protowire::corrupt::flip_bit(&bytes, idx % bytes.len().max(1), bit);
        let _ = Object::decode(Kind::Pod, &corrupted);
    }

    /// Every path reported by reflection can be read back and rewritten
    /// with its own value (the campaign depends on this agreement).
    #[test]
    fn reflection_paths_are_consistent(pod in arb_pod()) {
        let obj = Object::Pod(pod);
        for (path, value) in obj.field_list() {
            prop_assert_eq!(obj.get_field(&path), Some(value.clone()), "path {}", path);
            let mut copy = obj.clone();
            prop_assert!(copy.set_field(&path, value), "set failed for {}", path);
        }
    }

    /// A set-then-get through reflection returns the written value.
    #[test]
    fn reflection_set_get_agrees(pod in arb_pod(), replicas in 0i64..100) {
        let mut rs = ReplicaSet::default();
        rs.metadata = pod.metadata.clone();
        rs.spec.replicas = 1;
        let mut obj = Object::ReplicaSet(rs);
        prop_assert!(obj.set_field("spec.replicas", Value::Int(replicas)));
        prop_assert_eq!(obj.get_field("spec.replicas"), Some(Value::Int(replicas)));
        // And the mutation survives a wire roundtrip.
        let back = Object::decode(Kind::ReplicaSet, &obj.encode()).unwrap();
        prop_assert_eq!(back.get_field("spec.replicas"), Some(Value::Int(replicas)));
    }

    /// Store revisions are strictly monotone and reads observe the last
    /// committed write.
    #[test]
    fn etcd_revision_monotone(writes in proptest::collection::vec(("[a-f]{1,3}", proptest::collection::vec(any::<u8>(), 0..32)), 1..40)) {
        let mut etcd = etcd_sim::Etcd::new(1, 1 << 20);
        let mut last_rev = 0;
        let mut shadow: std::collections::HashMap<String, Vec<u8>> = Default::default();
        for (k, v) in writes {
            let key = format!("/registry/pods/default/{k}");
            let rev = etcd.put(&key, v.clone()).unwrap();
            prop_assert!(rev > last_rev);
            last_rev = rev;
            shadow.insert(key, v);
        }
        for (k, v) in &shadow {
            prop_assert_eq!(etcd.get(k).map(|(b, _)| b.to_vec()), Some(v.clone()));
        }
    }

    /// Quorum reads mask any single-replica at-rest corruption.
    #[test]
    fn quorum_masks_single_corruption(payload in proptest::collection::vec(any::<u8>(), 1..64), garbage in proptest::collection::vec(any::<u8>(), 1..64), replica in 0usize..3) {
        prop_assume!(payload != garbage);
        let mut etcd = etcd_sim::Etcd::new(3, 1 << 20);
        etcd.put("/k", payload.clone()).unwrap();
        etcd.corrupt_at_rest(replica, "/k", garbage);
        prop_assert_eq!(etcd.get("/k").map(|(b, _)| b.to_vec()), Some(payload));
    }

    /// The work queue never loses an enqueued key.
    #[test]
    fn workqueue_is_lossless(keys in proptest::collection::vec("[a-d]{1,2}", 1..30)) {
        let mut q = k8s_apiserver::workqueue::WorkQueue::new();
        let unique: std::collections::BTreeSet<String> = keys.iter().cloned().collect();
        for k in &keys {
            q.enqueue(k.clone(), 0);
        }
        let mut popped = std::collections::BTreeSet::new();
        while let Some(k) = q.pop_ready(0) {
            popped.insert(k);
        }
        prop_assert_eq!(popped, unique);
    }
}
