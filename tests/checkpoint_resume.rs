//! Kill-mid-checkpoint resume (the acceptance criterion for the
//! checkpoint bugfixes): a campaign killed while flushing a chunk leaves
//! a `.partial` file with a torn trailing row; the next run must detect
//! the tear, truncate back to the last complete row, resume from there,
//! and produce a final TSV cache byte-identical to an uninterrupted run.
//!
//! This file is its own test binary (own process): it owns the `MUTINY_*`
//! environment, so the tiny deploy×drop slice it configures cannot leak
//! into the other test binaries.

use std::fs;

fn configure_tiny_campaign() {
    std::env::set_var("MUTINY_SCENARIOS", "deploy");
    std::env::set_var("MUTINY_FAULTS", "drop");
    std::env::set_var("MUTINY_SCALE", "0.05");
    std::env::set_var("MUTINY_GOLDEN_RUNS", "4");
    std::env::set_var("MUTINY_SEED", "2024");
    // One row per chunk: every row lands in its own flush, so a torn
    // trailing row is exactly "killed mid-checkpoint".
    std::env::set_var("MUTINY_CHECKPOINT_ROWS", "1");
    std::env::set_var("MUTINY_THREADS", "2");
}

#[test]
fn killed_mid_checkpoint_resumes_byte_identically() {
    configure_tiny_campaign();
    let path = mutiny_bench::cache_path();
    let partial = path.with_extension("tsv.partial");
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&partial);

    // 1. The uninterrupted run: rows land in the final TSV cache.
    let uninterrupted = mutiny_bench::campaign();
    assert!(uninterrupted.len() >= 3, "slice too small: {}", uninterrupted.len());
    let golden_tsv = fs::read_to_string(&path).expect("final cache written");
    assert_eq!(golden_tsv, mutiny_bench::render_rows(&uninterrupted));
    assert!(!partial.exists(), "promote must consume the checkpoint");

    // 2. Simulate the kill: a checkpoint holding the first complete rows
    //    plus a torn half-row (the write the kill interrupted). The first
    //    kept row gets a sentinel z-score: outcome columns are not part
    //    of the plan-prefix check, so a *true* resume must carry the
    //    sentinel through to the final cache untouched — while a silent
    //    from-scratch re-run would recompute the original value. This is
    //    what distinguishes "resumed" from "rows happen to be
    //    deterministic".
    let lines: Vec<&str> = golden_tsv.lines().collect();
    let keep = lines.len() - 2;
    let sentinel_row = {
        let mut fields: Vec<&str> = lines[0].split('\t').collect();
        assert_ne!(fields[4], "999.25", "sentinel must differ from the real z");
        fields[4] = "999.25";
        fields.join("\t")
    };
    let mut torn = String::new();
    for (i, l) in lines[..keep].iter().enumerate() {
        torn.push_str(if i == 0 { sentinel_row.as_str() } else { l });
        torn.push('\n');
    }
    let half = &lines[keep][..lines[keep].len() / 2];
    torn.push_str(half); // no trailing newline: the flush never finished
    fs::remove_file(&path).expect("drop final cache");
    fs::write(&partial, &torn).expect("plant interrupted checkpoint");

    // 3. Resume: the torn tail is truncated, only rows `keep..` re-run,
    //    and the promoted file is the checkpointed prefix (sentinel
    //    included) plus the re-run tail — byte-identical to the
    //    uninterrupted run everywhere except the planted sentinel.
    let mut expected = String::new();
    expected.push_str(&sentinel_row);
    expected.push('\n');
    for l in &lines[1..] {
        expected.push_str(l);
        expected.push('\n');
    }
    let resumed = mutiny_bench::campaign();
    assert_eq!(
        mutiny_bench::render_rows(&resumed),
        expected,
        "campaign did not resume from the torn checkpoint (sentinel lost or tail diverged)"
    );
    let resumed_tsv = fs::read_to_string(&path).expect("final cache rewritten");
    assert_eq!(resumed_tsv, expected, "promoted cache file is not the resumed prefix + tail");
    assert!(!partial.exists());

    // 4. A checkpoint corrupted *before* the tail (not a tear) is stale:
    //    it must be discarded, and the campaign still completes with the
    //    same rows from scratch.
    fs::remove_file(&path).expect("drop final cache again");
    let corrupt = golden_tsv.replacen("deploy", "dEploy", 1);
    fs::write(&partial, &corrupt).expect("plant corrupt checkpoint");
    let rebuilt = mutiny_bench::campaign();
    assert_eq!(mutiny_bench::render_rows(&rebuilt), golden_tsv);
}
