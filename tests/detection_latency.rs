//! Detection-latency regression wall for the wire fault families.
//!
//! The propagation-timeline detector used to consider only the hard
//! failure gauges (etcd stalled, nodes not ready, network pods failed)
//! and audit errors the *monitoring* view, so the wire families
//! (drop/delay/duplicate/partition/node-partition) — whose damage is
//! lost or untimely control messages, not dirty stored state — reported
//! `detected=0` across entire campaigns. The fixed predicate also feeds
//! failed client requests (the blackbox probe), post-settle readiness
//! shortfalls against the baseline, excess pod creation, and over-bound
//! pod startups (the monitoring analog of the classifier's Tim rule)
//! into the detection milestone; this test pins one detected case per
//! wire family so the regression cannot return.

use k8s_cluster::ClusterConfig;
use k8s_model::Channel;
use mutiny_core::campaign::{
    plan_campaign, propagation_timeline, record_fields, run_world_with_fork, ExperimentConfig,
    PlannedExperiment,
};
use mutiny_core::golden::build_baseline_with_threads;
use mutiny_core::Scenario;
use mutiny_faults::{ArmedFault, Fault, DELAY, DROP, DUPLICATE, NODE_PARTITION, PARTITION};
use mutiny_scenarios::{DEPLOY, ROLLING_UPDATE};
use simkit::Rng;

#[test]
fn every_wire_family_has_a_detected_case() {
    let cluster = ClusterConfig::default();
    // Each family paired with a scenario where its damage is observable:
    // drop/partition starve deploy's rollout below its expected replica
    // counts; delay/duplicate make rolling-update's controllers re-do
    // work (excess pod creation, the paper's More-Resources transient).
    let pairs: [(Fault, Scenario); 5] = [
        (DROP, DEPLOY),
        (PARTITION, DEPLOY),
        (NODE_PARTITION, DEPLOY),
        (DELAY, ROLLING_UPDATE),
        (DUPLICATE, ROLLING_UPDATE),
    ];

    let mut baselines = std::collections::HashMap::new();
    for (_, sc) in &pairs {
        baselines
            .entry(*sc)
            .or_insert_with(|| build_baseline_with_threads(&cluster, *sc, 12, 0xBA5E, 1));
    }

    for (family, sc) in pairs {
        let baseline = &baselines[&sc];
        let traffic = record_fields(&cluster, sc, vec![Channel::ApiToEtcd], 42);
        let mut rng = Rng::new(7);
        let full = plan_campaign(&traffic, sc, &[family], &mut rng);
        let specs: Vec<&PlannedExperiment> =
            full.iter().filter(|p| p.fault == family).collect();
        assert!(!specs.is_empty(), "{family} planned no specs for {sc}");

        let mut detected = None;
        for planned in &specs {
            let cfg = ExperimentConfig {
                cluster: cluster.clone(),
                scenario: sc,
                injection: Some(ArmedFault::new(planned.fault, planned.spec.clone())),
            };
            let (world, injected) = run_world_with_fork(&cfg, true);
            let tl = propagation_timeline(&world, injected.as_ref(), Some(baseline));
            if let Some(lat) = tl.detection_latency_ms() {
                detected = Some((planned.spec.clone(), lat));
                break;
            }
        }
        let (spec, lat) = detected.unwrap_or_else(|| {
            panic!("{sc}/{family}: no spec out of {} produced a detection", specs.len())
        });
        // Detection must land inside the run's horizon.
        assert!(lat < 120_000, "{sc}/{family}: absurd latency {lat}ms for {spec:?}");
    }
}

#[test]
fn golden_runs_stay_quiet_under_the_detection_predicate() {
    // The flip side of the detection fix: none of the added signals
    // (probes, post-settle shortfalls, excess pod creation) may fire on
    // a healthy run — including at seeds the baseline never saw, and in
    // scenarios whose healthy trajectory churns replicas mid-flight
    // (rolling-update replaces pods; see also failover/node-drain,
    // probed during development). Checked via the latest settle rule
    // directly: golden samples past the deadline keep every gauge at or
    // above expectation and never exceed the golden pod-creation max.
    for sc in [DEPLOY, ROLLING_UPDATE] {
        let cluster = ClusterConfig::default();
        let baseline = build_baseline_with_threads(&cluster, sc, 12, 0xBA5E, 1);
        let gw = &baseline.golden_worst_startup;
        let startup_bound = simkit::stats::max(gw)
            .max(simkit::stats::mean(gw) + 3.0 * simkit::stats::std_dev(gw))
            as u64;
        for seed in [4242u64, 77, 900_001] {
            let cfg = ExperimentConfig::golden(sc, seed);
            let (world, injected) = run_world_with_fork(&cfg, true);
            assert!(injected.is_none());
            for (pod, &created) in &world.stats.pod_created {
                if created < world.stats.t0 {
                    continue;
                }
                if let Some(&running) = world.stats.pod_running.get(pod) {
                    assert!(
                        running.saturating_sub(created) <= startup_bound,
                        "{sc} seed {seed}: golden pod {pod} outlived the startup bound"
                    );
                }
            }
            let deadline = baseline.golden_settle_ms + 3_000;
            for s in &world.stats.samples {
                assert!(
                    s.pods_created_cum <= baseline.golden_pods_created_max,
                    "{sc} seed {seed}: golden run exceeded the pod-creation max"
                );
                if s.at <= deadline {
                    continue;
                }
                let ready_below = baseline
                    .expected_ready
                    .iter()
                    .any(|(k, &want)| s.app_ready.get(k).copied().unwrap_or(0) < want);
                let ep_below = baseline
                    .expected_endpoints
                    .iter()
                    .any(|(k, &want)| s.app_endpoints.get(k).copied().unwrap_or(0) < want);
                assert!(
                    !ready_below && !ep_below,
                    "{sc} seed {seed}: golden gauge below expectation at {}ms \
                     (settle deadline {deadline}ms)",
                    s.at
                );
            }
        }
    }
}
